// Property oracle for incremental statistics maintenance (Stats::Apply):
// folding the facts of an insert-only stream into a snapshot, over
// arbitrary delta partitions, is exactly equal — cardinality and every
// per-position distinct count — to Stats::Collect from scratch on the
// final instance. Streams are drawn over small element pools so duplicate
// facts are frequent (AddFact rejects them; only genuinely new facts may
// reach Apply), and empty deltas are interleaved as an explicit edge case.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>
#include <vector>

#include "base/stats.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

VocabularyPtr StreamVocab() {
  auto vocab = MakeVocabulary();
  vocab->AddPredicate("G", 0);
  vocab->AddPredicate("U", 1);
  vocab->AddPredicate("R", 2);
  vocab->AddPredicate("T", 3);
  return vocab;
}

Fact RandomFact(const VocabularyPtr& vocab, const std::vector<PredId>& preds,
                size_t elems, std::mt19937& rng) {
  std::uniform_int_distribution<size_t> pred_dist(0, preds.size() - 1);
  std::uniform_int_distribution<ElemId> elem_dist(
      0, static_cast<ElemId>(elems - 1));
  PredId p = preds[pred_dist(rng)];
  std::vector<ElemId> args;
  for (int j = 0; j < vocab->arity(p); ++j) args.push_back(elem_dist(rng));
  return Fact(p, std::move(args));
}

void ExpectStatsEqual(const Stats& got, const Stats& want,
                      const VocabularyPtr& vocab, unsigned seed) {
  EXPECT_EQ(got.counted_facts(), want.counted_facts()) << "seed " << seed;
  for (PredId p : vocab->AllPredicates()) {
    EXPECT_EQ(got.cardinality(p), want.cardinality(p))
        << "seed " << seed << " pred " << vocab->name(p);
    for (int i = 0; i < vocab->arity(p); ++i) {
      EXPECT_EQ(got.distinct(p, i), want.distinct(p, i))
          << "seed " << seed << " pred " << vocab->name(p) << " pos " << i;
    }
  }
}

TEST(StatsIncrementalTest, ApplyOverRandomPartitionsMatchesCollect) {
  for (unsigned seed = 0; seed < 250; ++seed) {
    auto vocab = StreamVocab();
    std::vector<PredId> preds = vocab->AllPredicates();
    std::mt19937 rng(7000 + seed);
    const size_t elems = 2 + seed % 7;  // small pools force duplicates
    Instance inst(vocab);
    for (size_t i = 0; i < elems; ++i) inst.AddElement();

    // A random prefix is counted by Collect; the rest arrives as a
    // stream cut into random delta partitions.
    std::uniform_int_distribution<int> prefix_dist(0, 10);
    const int prefix = prefix_dist(rng);
    for (int i = 0; i < prefix; ++i) {
      inst.AddFact(RandomFact(vocab, preds, elems, rng));
    }
    Stats stats = Stats::Collect(inst);

    std::uniform_int_distribution<int> len_dist(20, 60);
    std::uniform_int_distribution<int> cut_dist(0, 3);
    const int len = len_dist(rng);
    std::vector<Fact> delta;
    for (int i = 0; i < len; ++i) {
      Fact f = RandomFact(vocab, preds, elems, rng);
      // Duplicates never reach Apply: the merge barrier's AddFact dedup
      // is the contract that keeps the counts exact.
      if (inst.AddFact(f)) delta.push_back(std::move(f));
      if (cut_dist(rng) == 0) {
        stats.Apply(inst, delta);
        delta.clear();
        // Empty deltas are legal whenever the snapshot is current.
        if (cut_dist(rng) == 0) stats.Apply(inst, std::span<const Fact>());
      }
    }
    stats.Apply(inst, delta);

    ExpectStatsEqual(stats, Stats::Collect(inst), vocab, seed);
  }
}

TEST(StatsIncrementalTest, RepeatedDuplicatesLeaveCountsExact) {
  auto vocab = StreamVocab();
  Instance inst(vocab);
  ElemId a = inst.AddElement("a"), b = inst.AddElement("b");
  PredId r = *vocab->FindPredicate("R");
  Stats stats = Stats::Collect(inst);

  // The same fact offered many times only ever enters the delta once.
  std::vector<Fact> delta;
  for (int i = 0; i < 5; ++i) {
    Fact f(r, {a, b});
    if (inst.AddFact(f)) delta.push_back(std::move(f));
  }
  ASSERT_EQ(delta.size(), 1u);
  stats.Apply(inst, delta);
  EXPECT_EQ(stats.cardinality(r), 1u);
  EXPECT_EQ(stats.distinct(r, 0), 1u);
  EXPECT_EQ(stats.distinct(r, 1), 1u);
  ExpectStatsEqual(stats, Stats::Collect(inst), vocab, 0);
}

TEST(StatsIncrementalTest, EmptyDeltaIsANoOp) {
  auto vocab = StreamVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  Instance inst = RandomInstance(vocab, preds, 5, 15, 8000);
  Stats stats = Stats::Collect(inst);
  stats.Apply(inst, std::span<const Fact>());
  stats.Apply(inst, std::span<const Fact>());
  ExpectStatsEqual(stats, Stats::Collect(inst), vocab, 0);
}

TEST(StatsIncrementalTest, ApplySeesNewPositionsOfGrowingRelations) {
  // A relation that is empty at Collect time gains its first facts purely
  // through Apply; distinct counts must materialize from nothing.
  auto vocab = StreamVocab();
  Instance inst(vocab);
  ElemId a = inst.AddElement(), b = inst.AddElement(),
         c = inst.AddElement();
  PredId t = *vocab->FindPredicate("T");
  Stats stats = Stats::Collect(inst);
  std::vector<Fact> delta;
  auto add = [&](ElemId x, ElemId y, ElemId z) {
    Fact f(t, {x, y, z});
    if (inst.AddFact(f)) delta.push_back(std::move(f));
  };
  add(a, a, b);
  add(a, b, c);
  add(b, b, c);
  stats.Apply(inst, delta);
  EXPECT_EQ(stats.cardinality(t), 3u);
  EXPECT_EQ(stats.distinct(t, 0), 2u);  // {a, b}
  EXPECT_EQ(stats.distinct(t, 1), 2u);  // {a, b}
  EXPECT_EQ(stats.distinct(t, 2), 2u);  // {b, c}
  ExpectStatsEqual(stats, Stats::Collect(inst), vocab, 0);
}

TEST(StatsIncrementalTest, MixedInsertDeleteStreamMatchesCollect) {
  // The retraction arm of the oracle: interleaved genuine inserts and
  // deletes (RemoveFact dedups the same way AddFact does) folded in over
  // random partitions must land exactly on Collect of the final
  // instance — removals drive per-value multiplicities back through the
  // erase-at-zero path that shrinks the distinct counts.
  for (unsigned seed = 0; seed < 250; ++seed) {
    auto vocab = StreamVocab();
    std::vector<PredId> preds = vocab->AllPredicates();
    std::mt19937 rng(9000 + seed);
    const size_t elems = 2 + seed % 7;
    Instance inst(vocab);
    for (size_t i = 0; i < elems; ++i) inst.AddElement();
    std::uniform_int_distribution<int> prefix_dist(0, 10);
    const int prefix = prefix_dist(rng);
    for (int i = 0; i < prefix; ++i) {
      inst.AddFact(RandomFact(vocab, preds, elems, rng));
    }
    Stats stats = Stats::Collect(inst);

    std::uniform_int_distribution<int> len_dist(20, 60);
    std::uniform_int_distribution<int> cut_dist(0, 3);
    const int len = len_dist(rng);
    std::vector<Fact> added, removed;
    for (int i = 0; i < len; ++i) {
      if (rng() % 3 == 0 && inst.num_facts() > 0) {
        // Delete a present fact — unless this batch just added it, in
        // which case the pair must cancel out of the delta instead
        // (Apply's contract covers net changes only).
        Fact f = inst.FactAt(static_cast<uint32_t>(rng() % inst.num_facts()));
        ASSERT_TRUE(inst.RemoveFact(f));
        auto it = std::find(added.begin(), added.end(), f);
        if (it != added.end()) {
          added.erase(it);
        } else {
          removed.push_back(std::move(f));
        }
      } else {
        Fact f = RandomFact(vocab, preds, elems, rng);
        // A fact removed earlier in this batch and re-added also
        // cancels; otherwise only genuinely new facts enter the delta.
        auto it = std::find(removed.begin(), removed.end(), f);
        if (inst.AddFact(f)) {
          if (it != removed.end()) {
            removed.erase(it);
          } else {
            added.push_back(std::move(f));
          }
        }
      }
      if (cut_dist(rng) == 0) {
        stats.Apply(inst, added, removed);
        added.clear();
        removed.clear();
      }
    }
    stats.Apply(inst, added, removed);

    ExpectStatsEqual(stats, Stats::Collect(inst), vocab, seed);
  }
}

TEST(StatsIncrementalTest, DeleteDrainsRelationToEmpty) {
  auto vocab = StreamVocab();
  Instance inst(vocab);
  ElemId a = inst.AddElement(), b = inst.AddElement();
  PredId r = *vocab->FindPredicate("R");
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {b, b});
  Stats stats = Stats::Collect(inst);
  EXPECT_EQ(stats.distinct(r, 1), 1u);  // {b}

  std::vector<Fact> removed = {Fact(r, {a, b})};
  ASSERT_TRUE(inst.RemoveFact(removed[0]));
  stats.Apply(inst, {}, removed);
  EXPECT_EQ(stats.cardinality(r), 1u);
  EXPECT_EQ(stats.distinct(r, 0), 1u);  // {a} gone, {b} stays
  EXPECT_EQ(stats.distinct(r, 1), 1u);

  removed = {Fact(r, {b, b})};
  ASSERT_TRUE(inst.RemoveFact(removed[0]));
  stats.Apply(inst, {}, removed);
  EXPECT_EQ(stats.cardinality(r), 0u);
  EXPECT_EQ(stats.distinct(r, 0), 0u);
  EXPECT_EQ(stats.distinct(r, 1), 0u);
  ExpectStatsEqual(stats, Stats::Collect(inst), vocab, 0);
}

}  // namespace
}  // namespace mondet
