// Behavior-preservation pin for the shared randomized-testing library
// (src/testing/generator.h). The five differential suites historically
// carried private copies of their program/instance/schedule generators;
// the refactor folded them into one seed-deterministic library, and every
// saved seed (CI logs, corpus files, bug reports) must keep meaning the
// same generated artifact. This test freezes the pre-refactor generation
// logic *verbatim* in the `frozen` namespace — deliberately not sharing a
// line with src/testing — regenerates every historical seed through both
// paths, and requires textual equality. An aggregate FNV-1a hash per
// family is additionally pinned so a coordinated drift of both copies
// (e.g. a well-meaning "cleanup" of the draw order in each) still fails.
//
// If this test breaks, the fix is to restore the library's draw order,
// never to update the hashes: historical seeds are a public interface.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/instance.h"
#include "base/symbol_table.h"
#include "datalog/program.h"
#include "testing/describe.h"
#include "testing/generator.h"
#include "testing/oracle.h"

namespace mondet {
namespace {

// --- Frozen pre-refactor generators. ----------------------------------------
//
// One parameterized copy of the rule/program scheme all five tests shared
// (they differed only in predicate pools and shape bounds), preserving the
// exact draw order: nvars, natoms, per body atom the predicate then one
// var per argument, head predicate (skipped when the goal is forced), one
// body var per head argument.

namespace frozen {

Rule RuleFromPools(const VocabularyPtr& vocab,
                   const std::vector<PredId>& body_preds,
                   const std::vector<PredId>& head_preds, PredId goal,
                   int min_vars, int max_vars, int min_atoms, int max_atoms,
                   std::mt19937& rng, bool goal_head) {
  std::uniform_int_distribution<int> nvars_dist(min_vars, max_vars);
  std::uniform_int_distribution<int> natoms_dist(min_atoms, max_atoms);
  const int nvars = nvars_dist(rng);
  const int natoms = natoms_dist(rng);
  std::uniform_int_distribution<int> var_dist(0, nvars - 1);
  std::uniform_int_distribution<size_t> body_pred_dist(0,
                                                       body_preds.size() - 1);

  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule rule;
  std::vector<VarId> remap(nvars, kUnmapped);
  auto used = [&](int raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("v" + std::to_string(raw));
    }
    return remap[raw];
  };
  for (int a = 0; a < natoms; ++a) {
    PredId p = body_preds[body_pred_dist(rng)];
    std::vector<VarId> args;
    for (int j = 0; j < vocab->arity(p); ++j) {
      args.push_back(used(var_dist(rng)));
    }
    rule.body.push_back(QAtom(p, args));
  }
  std::uniform_int_distribution<size_t> head_pred_dist(0,
                                                       head_preds.size() - 1);
  PredId hp = goal_head ? goal : head_preds[head_pred_dist(rng)];
  std::uniform_int_distribution<size_t> body_var_dist(
      0, rule.var_names.size() - 1);
  std::vector<VarId> head_args;
  for (int j = 0; j < vocab->arity(hp); ++j) {
    head_args.push_back(static_cast<VarId>(body_var_dist(rng)));
  }
  rule.head = QAtom(hp, head_args);
  return rule;
}

Program ProgramFromPools(const VocabularyPtr& vocab,
                         const std::vector<PredId>& body_preds,
                         const std::vector<PredId>& head_preds, PredId goal,
                         int min_vars, int max_vars, int min_atoms,
                         int max_atoms, int min_rules, int max_rules,
                         unsigned seed, bool goal_tail) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(min_rules, max_rules);
  Program program(vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) {
    program.AddRule(RuleFromPools(vocab, body_preds, head_preds, goal,
                                  min_vars, max_vars, min_atoms, max_atoms,
                                  rng, /*goal_head=*/false));
  }
  if (goal_tail) {
    program.AddRule(RuleFromPools(vocab, body_preds, head_preds, goal,
                                  min_vars, max_vars, min_atoms, max_atoms,
                                  rng, /*goal_head=*/true));
  }
  return program;
}

/// Verbatim tests/test_util.h RandomInstance (the historical helper).
Instance InstanceFromPreds(const VocabularyPtr& vocab,
                           const std::vector<PredId>& preds, int elems,
                           int facts, unsigned seed) {
  std::mt19937 rng(seed);
  Instance inst(vocab);
  for (int i = 0; i < elems; ++i) inst.AddElement();
  std::uniform_int_distribution<int> elem_dist(0, elems - 1);
  std::uniform_int_distribution<size_t> pred_dist(0, preds.size() - 1);
  for (int i = 0; i < facts; ++i) {
    PredId p = preds[pred_dist(rng)];
    std::vector<ElemId> args;
    for (int j = 0; j < vocab->arity(p); ++j) {
      args.push_back(static_cast<ElemId>(elem_dist(rng)));
    }
    inst.AddFact(p, args);
  }
  return inst;
}

/// Verbatim maintenance_differential_test RandomBaseFact.
Fact BaseFact(const VocabularyPtr& vocab, const std::vector<PredId>& preds,
              size_t elems, std::mt19937& rng) {
  std::uniform_int_distribution<size_t> pred_dist(0, preds.size() - 1);
  std::uniform_int_distribution<ElemId> elem_dist(
      0, static_cast<ElemId>(elems - 1));
  PredId p = preds[pred_dist(rng)];
  std::vector<ElemId> args;
  for (int j = 0; j < vocab->arity(p); ++j) args.push_back(elem_dist(rng));
  return Fact(p, std::move(args));
}

/// Verbatim maintenance_differential_test schedule loop: raw batches
/// drawn against the evolving base, inline normalization applied between
/// batches. Returns the *raw* batches (what FuzzCase records).
std::vector<testing::RawBatch> Schedule(const VocabularyPtr& vocab,
                                        const std::vector<PredId>& churn,
                                        Instance base, size_t elems,
                                        int steps, std::mt19937& rng) {
  std::vector<testing::RawBatch> out;
  std::uniform_int_distribution<int> batch_dist(0, 4);
  for (int step = 0; step < steps; ++step) {
    std::vector<Fact> raw_ins, raw_del;
    for (int i = batch_dist(rng); i > 0; --i) {
      raw_ins.push_back(BaseFact(vocab, churn, elems, rng));
    }
    for (int i = batch_dist(rng); i > 0; --i) {
      if (base.num_facts() > 0 && rng() % 2 == 0) {
        raw_del.push_back(
            base.FactAt(static_cast<uint32_t>(rng() % base.num_facts())));
      } else {
        raw_del.push_back(BaseFact(vocab, churn, elems, rng));
      }
    }
    std::unordered_set<Fact, FactHash> raw_ins_set(raw_ins.begin(),
                                                   raw_ins.end());
    std::unordered_set<Fact, FactHash> seen_ins, seen_del;
    std::vector<Fact> ins, del;
    for (const Fact& f : raw_ins) {
      if (!base.HasFact(f) && seen_ins.insert(f).second) ins.push_back(f);
    }
    for (const Fact& f : raw_del) {
      if (base.HasFact(f) && !raw_ins_set.count(f) &&
          seen_del.insert(f).second) {
        del.push_back(f);
      }
    }
    for (const Fact& f : ins) base.AddFact(f);
    for (const Fact& f : del) base.RemoveFact(f);
    out.push_back(testing::RawBatch{std::move(raw_ins), std::move(raw_del)});
  }
  return out;
}

}  // namespace frozen

// Pinned aggregate FNV-1a hashes (over the library-side renderings of
// every historical seed, concatenated). See the file comment: on
// mismatch, fix the generator, do not re-pin.
constexpr uint64_t kEvalHash = 0x808e728911d31032ull;
constexpr uint64_t kPlanHash = 0x203d4b47a4b23d2eull;
constexpr uint64_t kDataflowHash = 0x2ab96dcac606587full;
constexpr uint64_t kMaintenanceHash = 0x0d7f7a929b8849b2ull;
constexpr uint64_t kParallelHash = 0x884de98679367498ull;

uint64_t HashAccum(uint64_t h, const std::string& s) {
  // Chain per-seed hashes (hash of hash ⊕ next rendering hash) so the
  // aggregate depends on order without concatenating megabytes.
  return testing::Fnv1a(std::to_string(h) + "|" + std::to_string(
                            testing::Fnv1a(s)));
}

TEST(TestingGolden, EvalFamilyBitIdentical) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e1 = vocab->AddPredicate("E1", 1);
  PredId e2 = vocab->AddPredicate("E2", 2);
  PredId i1 = vocab->AddPredicate("I1", 1);
  PredId i2 = vocab->AddPredicate("I2", 2);
  PredId g0 = vocab->AddPredicate("G0", 0);
  const testing::Oracle* oracle = testing::FindOracle("eval-differential");
  ASSERT_NE(oracle, nullptr);

  uint64_t hash = 0;
  for (unsigned seed = 0; seed < 220; ++seed) {
    Program want = frozen::ProgramFromPools(
        vocab, {e1, e2, i1, i2}, {i1, i2, g0}, g0, 2, 4, 1, 3, 2, 6,
        7000 + seed, /*goal_tail=*/false);
    std::vector<PredId> inst_preds = {e1, e2};
    if (seed % 2 == 1) {
      inst_preds.push_back(i1);
      inst_preds.push_back(i2);
    }
    Instance want_inst =
        frozen::InstanceFromPreds(vocab, inst_preds, 5, 10, 9000 + seed);

    testing::FuzzCase c = oracle->Generate(seed);
    ASSERT_TRUE(c.program.has_value()) << "seed " << seed;
    ASSERT_TRUE(c.instance.has_value()) << "seed " << seed;
    EXPECT_EQ(testing::DescribeProgram(*c.program),
              testing::DescribeProgram(want))
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeInstance(*c.instance),
              testing::DescribeInstance(want_inst))
        << "seed " << seed;
    hash = HashAccum(hash, testing::DescribeProgram(*c.program) +
                               testing::DescribeInstance(*c.instance));
  }
  EXPECT_EQ(hash, kEvalHash) << "actual 0x" << std::hex << hash;
}

TEST(TestingGolden, PlanFamilyBitIdentical) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e1 = vocab->AddPredicate("E1", 1);
  PredId e2 = vocab->AddPredicate("E2", 2);
  PredId e3 = vocab->AddPredicate("E3", 3);
  PredId i1 = vocab->AddPredicate("I1", 1);
  PredId i2 = vocab->AddPredicate("I2", 2);
  PredId g0 = vocab->AddPredicate("G0", 0);
  const testing::Oracle* oracle = testing::FindOracle("plan-differential");
  ASSERT_NE(oracle, nullptr);

  uint64_t hash = 0;
  for (unsigned seed = 0; seed < 200; ++seed) {
    Program want = frozen::ProgramFromPools(
        vocab, {e1, e2, e3, i1, i2}, {i1, i2, g0}, g0, 2, 5, 1, 4, 2, 6,
        17000 + seed, /*goal_tail=*/false);
    std::vector<PredId> inst_preds = {e1, e2, e3};
    if (seed % 2 == 1) {
      inst_preds.push_back(i1);
      inst_preds.push_back(i2);
    }
    Instance want_inst =
        frozen::InstanceFromPreds(vocab, inst_preds, 5, 12, 19000 + seed);

    testing::FuzzCase c = oracle->Generate(seed);
    ASSERT_TRUE(c.program.has_value() && c.instance.has_value())
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeProgram(*c.program),
              testing::DescribeProgram(want))
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeInstance(*c.instance),
              testing::DescribeInstance(want_inst))
        << "seed " << seed;
    hash = HashAccum(hash, testing::DescribeProgram(*c.program) +
                               testing::DescribeInstance(*c.instance));
  }
  EXPECT_EQ(hash, kPlanHash) << "actual 0x" << std::hex << hash;
}

TEST(TestingGolden, DataflowFamilyBitIdentical) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e1 = vocab->AddPredicate("E1", 1);
  PredId e2 = vocab->AddPredicate("E2", 2);
  PredId z1 = vocab->AddPredicate("Z1", 1);
  PredId i1 = vocab->AddPredicate("I1", 1);
  PredId i2 = vocab->AddPredicate("I2", 2);
  PredId j2 = vocab->AddPredicate("J2", 2);
  PredId g0 = vocab->AddPredicate("G0", 0);
  const testing::Oracle* oracle = testing::FindOracle("dataflow-soundness");
  ASSERT_NE(oracle, nullptr);

  uint64_t hash = 0;
  for (unsigned seed = 0; seed < 220; ++seed) {
    Program want = frozen::ProgramFromPools(
        vocab, {e1, e2, z1, i1, i2, j2}, {i1, i2, j2, g0}, g0, 2, 4, 1, 3,
        2, 6, 7000 + seed, /*goal_tail=*/false);
    std::vector<PredId> inst_preds = {e1, e2};
    if (seed % 3 == 0) inst_preds.push_back(z1);
    if (seed % 2 == 1) {
      inst_preds.push_back(i1);
      inst_preds.push_back(i2);
    }
    Instance want_inst =
        frozen::InstanceFromPreds(vocab, inst_preds, 4, 8, 9000 + seed);

    testing::FuzzCase c = oracle->Generate(seed);
    ASSERT_TRUE(c.program.has_value() && c.instance.has_value())
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeProgram(*c.program),
              testing::DescribeProgram(want))
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeInstance(*c.instance),
              testing::DescribeInstance(want_inst))
        << "seed " << seed;
    hash = HashAccum(hash, testing::DescribeProgram(*c.program) +
                               testing::DescribeInstance(*c.instance));
  }
  EXPECT_EQ(hash, kDataflowHash) << "actual 0x" << std::hex << hash;
}

TEST(TestingGolden, MaintenanceFamilyBitIdentical) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e1 = vocab->AddPredicate("E1", 1);
  PredId e2 = vocab->AddPredicate("E2", 2);
  PredId i1 = vocab->AddPredicate("I1", 1);
  PredId i2 = vocab->AddPredicate("I2", 2);
  PredId g0 = vocab->AddPredicate("G0", 0);
  const testing::Oracle* oracle =
      testing::FindOracle("maintenance-differential");
  ASSERT_NE(oracle, nullptr);

  uint64_t hash = 0;
  for (unsigned seed = 0; seed < 220; ++seed) {
    Program want = frozen::ProgramFromPools(
        vocab, {e1, e2, i1, i2}, {i1, i2, g0}, g0, 2, 4, 1, 3, 2, 6,
        11000 + seed, /*goal_tail=*/false);
    std::mt19937 rng(12000 + seed);
    std::vector<PredId> churn = {e1, e2};
    if (seed % 2 == 1) {
      churn.push_back(i1);
      churn.push_back(i2);
    }
    Instance want_base =
        frozen::InstanceFromPreds(vocab, churn, 5, 8, 13000 + seed);
    std::vector<testing::RawBatch> want_sched = frozen::Schedule(
        vocab, churn, want_base, 5, 4 + seed % 4, rng);

    testing::FuzzCase c = oracle->Generate(seed);
    ASSERT_TRUE(c.program.has_value() && c.instance.has_value())
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeProgram(*c.program),
              testing::DescribeProgram(want))
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeInstance(*c.instance),
              testing::DescribeInstance(want_base))
        << "seed " << seed;
    EXPECT_EQ(testing::DescribeSchedule(c.schedule, vocab),
              testing::DescribeSchedule(want_sched, vocab))
        << "seed " << seed;
    hash = HashAccum(hash, testing::DescribeProgram(*c.program) +
                               testing::DescribeInstance(*c.instance) +
                               testing::DescribeSchedule(c.schedule, vocab));
  }
  EXPECT_EQ(hash, kMaintenanceHash) << "actual 0x" << std::hex << hash;
}

TEST(TestingGolden, ParallelFamilyBitIdentical) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e1 = vocab->AddPredicate("E1", 1);
  PredId e2 = vocab->AddPredicate("E2", 2);
  PredId i1 = vocab->AddPredicate("I1", 1);
  PredId i2 = vocab->AddPredicate("I2", 2);
  PredId g0 = vocab->AddPredicate("G0", 0);
  const testing::Oracle* oracle = testing::FindOracle("mondet-parallel");
  ASSERT_NE(oracle, nullptr);

  uint64_t hash = 0;
  for (unsigned seed = 0; seed < 100; ++seed) {
    Program want = frozen::ProgramFromPools(
        vocab, {e1, e2, i1, i2}, {i1, i2, g0}, g0, 2, 4, 1, 3, 1, 4,
        5000 + seed, /*goal_tail=*/true);

    testing::FuzzCase c = oracle->Generate(seed);
    ASSERT_TRUE(c.program.has_value()) << "seed " << seed;
    EXPECT_EQ(testing::DescribeProgram(*c.program),
              testing::DescribeProgram(want))
        << "seed " << seed;
    // View shapes are keyed by seed % 3 with fixed names/definitions —
    // pin the rendering directly.
    ASSERT_EQ(c.views.size(), 2u) << "seed " << seed;
    switch (seed % 3) {
      case 0:
        EXPECT_EQ(c.views[0].name, "VA1");
        EXPECT_EQ(c.views[1].name, "VA2");
        break;
      case 1:
        EXPECT_EQ(c.views[0].name, "VProj");
        EXPECT_EQ(c.views[0].text, "VP(x) :- E2(x,y).");
        EXPECT_EQ(c.views[1].name, "VA1");
        break;
      default:
        EXPECT_EQ(c.views[0].name, "VReach");
        EXPECT_EQ(c.views[0].text, "VR(x) :- E1(x).\nVR(x) :- E2(x,y), VR(y).");
        EXPECT_EQ(c.views[1].name, "VA2");
        break;
    }
    hash = HashAccum(hash, testing::DescribeProgram(*c.program) +
                               testing::DescribeViews(c.views));
  }
  EXPECT_EQ(hash, kParallelHash) << "actual 0x" << std::hex << hash;
}

}  // namespace
}  // namespace mondet
