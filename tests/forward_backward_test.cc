#include <gtest/gtest.h>

#include "automata/ops.h"
#include "base/homomorphism.h"
#include "core/backward.h"
#include "core/forward.h"
#include "datalog/approximation.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

constexpr char kReach[] = R"(
  P(x) :- U(x).
  P(x) :- R(x,y), P(y).
  Goal() :- P(x), M(x).
)";

TEST(LimitIdbAtoms, FoldsWideRules) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    A(x) :- U(x).
    B(x) :- M(x).
    C(x) :- S(x).
    Goal() :- A(x), B(x), C(x), R(x,y).
  )",
                                  "Goal", vocab);
  DatalogQuery limited = LimitIdbAtomsPerRule(q, 2);
  for (const Rule& rule : limited.program.rules()) {
    int idb_atoms = 0;
    for (const QAtom& a : rule.body) {
      if (limited.program.IsIdb(a.pred)) ++idb_atoms;
    }
    EXPECT_LE(idb_atoms, 2);
  }
  // Behaviour preserved.
  PredId u = *vocab->FindPredicate("U");
  PredId m = *vocab->FindPredicate("M");
  PredId s = *vocab->FindPredicate("S");
  PredId r = *vocab->FindPredicate("R");
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, {u, m, s, r}, 3, 7, 60 + seed);
    EXPECT_EQ(DatalogHoldsOn(q, inst), DatalogHoldsOn(limited, inst))
        << "seed " << seed;
  }
}

TEST(Forward, AcceptedCodesDecodeToExpansions) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  ForwardResult fwd = ApproximationAutomaton(q);
  // Collect expansions up to depth 5.
  std::vector<Instance> expansions;
  EnumerateExpansions(q, 5, 100, [&](const Expansion& e) {
    expansions.push_back(e.inst);
    return true;
  });
  ASSERT_FALSE(expansions.empty());
  // Emptiness witness decodes to some expansion (up to hom equivalence).
  auto witness = EmptinessWitness(fwd.automaton);
  ASSERT_TRUE(witness.has_value());
  Instance decoded = witness->Decode(vocab);
  bool matches_some = false;
  for (const Instance& e : expansions) {
    matches_some = matches_some || HomEquivalent(decoded, e);
  }
  EXPECT_TRUE(matches_some) << decoded.DebugString();
}

TEST(Forward, WitnessSatisfiesQuery) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  ForwardResult fwd = ApproximationAutomaton(q);
  auto witness = EmptinessWitness(fwd.automaton);
  ASSERT_TRUE(witness.has_value());
  Instance decoded = witness->Decode(vocab);
  EXPECT_TRUE(DatalogHoldsOn(q, decoded));
}

TEST(Forward, BinaryRuleAutomaton) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    A(x) :- U(x).
    A(x) :- R(x,y), A(y), A(x2), S(x,x2).
    Goal() :- A(x), M(x).
  )",
                                  "Goal", vocab);
  ForwardResult fwd = ApproximationAutomaton(q);
  EXPECT_FALSE(IsEmpty(fwd.automaton));
  auto witness = EmptinessWitness(fwd.automaton);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(DatalogHoldsOn(q, witness->Decode(vocab)));
}

TEST(Backward, RoundTripReachability) {
  // Backward mapping of the approximation automaton of a query, composed
  // over the *base* schema, recovers the query: Q_A holds exactly on
  // instances some approximation maps into (by Prop. 7 degenerate case
  // with identity views).
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  ForwardResult fwd = ApproximationAutomaton(q);
  std::vector<PredId> schema{*vocab->FindPredicate("R"),
                             *vocab->FindPredicate("U"),
                             *vocab->FindPredicate("M")};
  DatalogQuery back = BackwardMapping(fwd.automaton, schema, vocab);
  PredId r = schema[0];
  PredId u = schema[1];
  PredId m = schema[2];
  for (unsigned seed = 0; seed < 25; ++seed) {
    Instance inst = RandomInstance(vocab, {r, u, m}, 4, 8, 70 + seed);
    EXPECT_EQ(DatalogHoldsOn(q, inst), DatalogHoldsOn(back, inst))
        << "seed " << seed << "\n"
        << inst.DebugString();
  }
}

TEST(Backward, ChainExample) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  ForwardResult fwd = ApproximationAutomaton(q);
  std::vector<PredId> schema{*vocab->FindPredicate("R"),
                             *vocab->FindPredicate("U"),
                             *vocab->FindPredicate("M")};
  DatalogQuery back = BackwardMapping(fwd.automaton, schema, vocab);
  PredId r = schema[0];
  Instance inst = MakePath(vocab, r, 3);
  inst.AddFact(schema[1], {3});  // U at the end
  inst.AddFact(schema[2], {0});  // M at the start
  EXPECT_TRUE(DatalogHoldsOn(q, inst));
  EXPECT_TRUE(DatalogHoldsOn(back, inst));
  Instance no_mark = MakePath(vocab, r, 3);
  EXPECT_FALSE(DatalogHoldsOn(back, no_mark));
}

}  // namespace
}  // namespace mondet
