// MaintainedImage: the maintained view image must stay bit-identical to
// a from-scratch ViewSet::Image of the mutated base after every batch of
// a curated insert/delete schedule, and the monotonic-determinacy
// verdict re-checked through the maintained object must equal the
// verdict computed fresh — before, during, and after churn. Also covers
// ParseStream, the textual stream format feeding the CLI's `.stream`
// section.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/mondet_check.h"
#include "datalog/parser.h"
#include "views/maintained_image.h"
#include "views/view_set.h"

namespace mondet {
namespace {

CQ MustParseCq(const std::string& text, const VocabularyPtr& vocab) {
  std::string error;
  auto cq = ParseCq(text, vocab, &error);
  EXPECT_TRUE(cq.has_value()) << error;
  return *cq;
}

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

std::vector<Fact> SortedFacts(const Instance& inst) {
  std::vector<Fact> facts = inst.AllFacts();
  std::sort(facts.begin(), facts.end());
  return facts;
}

/// The headline contract: maintained image == recomputed image, as sets.
void ExpectImageFresh(const MaintainedImage& maintained,
                      const std::string& tag) {
  Instance fresh = maintained.FreshImage();
  EXPECT_EQ(maintained.image().num_elements(), fresh.num_elements()) << tag;
  EXPECT_EQ(SortedFacts(maintained.image()), SortedFacts(fresh)) << tag;
}

/// Curated fixture: recursive reachability query over a path, with two
/// atomic views and a recursive transitive-closure view (so schedules
/// drive both the counting and the DRed maintenance paths).
struct ReachFixture {
  VocabularyPtr vocab = MakeVocabulary();
  DatalogQuery query;
  ViewSet views;
  Instance base;
  PredId r = kNoPred, u = kNoPred;

  ReachFixture()
      : query(MustParseQuery(R"(
          P(x) :- U(x).
          P(x) :- R(x,y), P(y).
          Goal() :- P(x).
        )",
                             "Goal", vocab)),
        views(vocab),
        base(vocab) {
    r = *vocab->FindPredicate("R");
    u = *vocab->FindPredicate("U");
    views.AddAtomicView("VR", r);
    views.AddAtomicView("VU", u);
    std::vector<Diagnostic> diags;
    auto vt = ParseQuery(R"(
      VT0(x,y) :- R(x,y).
      VT0(x,z) :- R(x,y), VT0(y,z).
    )",
                         "VT0", vocab, &diags);
    EXPECT_TRUE(vt.has_value()) << FormatDiagnostics(diags);
    views.AddView("VT", *vt);
    // Path a -> b -> c, U(c): the query holds.
    ElemId a = base.AddElement("a"), b = base.AddElement("b"),
           c = base.AddElement("c");
    base.AddFact(r, {a, b});
    base.AddFact(r, {b, c});
    base.AddFact(u, {c});
  }
};

TEST(MaintainedImage, MatchesFreshImageAfterEveryBatch) {
  ReachFixture fx;
  MaintainedImage maintained(fx.views, fx.base);
  ExpectImageFresh(maintained, "initial");
  ElemId a = 0, b = 1, c = 2;
  ElemId d = maintained.AddElement("d");

  // Extend the chain (duplicate insert is legal in a raw batch).
  ImageDelta grow = maintained.ApplyDelta(
      {Fact(fx.r, {c, d}), Fact(fx.u, {d}), Fact(fx.r, {c, d})}, {});
  ExpectImageFresh(maintained, "grow");
  EXPECT_TRUE(maintained.base().HasFact(fx.r, {c, d}));
  // VR(c,d), VU(d), and the new VT pairs ending in d all appear.
  EXPECT_EQ(grow.inserts.size(), 5u);
  EXPECT_TRUE(grow.deletes.empty());

  // Cut the chain at b: every VT path through the edge disappears, via
  // the DRed overdelete/rederive cycle.
  ImageDelta cut = maintained.ApplyDelta({}, {Fact(fx.r, {b, c})});
  ExpectImageFresh(maintained, "cut");
  EXPECT_FALSE(maintained.base().HasFact(fx.r, {b, c}));
  EXPECT_TRUE(cut.inserts.empty());
  EXPECT_GT(cut.deletes.size(), 0u);
  EXPECT_GT(cut.overdeleted, 0u);

  // Rewire through a fresh element: the cut paths come back, longer.
  ElemId e = maintained.AddElement("e");
  ImageDelta rewire = maintained.ApplyDelta(
      {Fact(fx.r, {b, e}), Fact(fx.r, {e, c})}, {});
  ExpectImageFresh(maintained, "rewire");
  EXPECT_GT(rewire.inserts.size(), 0u);

  // No-op churn: delete an absent fact; insert+delete of the same fact
  // in one batch is an insert (new base = (old \ del) ∪ ins).
  ImageDelta churn = maintained.ApplyDelta(
      {Fact(fx.u, {a})}, {Fact(fx.r, {a, a}), Fact(fx.u, {a})});
  ExpectImageFresh(maintained, "churn");
  EXPECT_TRUE(maintained.base().HasFact(fx.u, {a}));
  ASSERT_EQ(churn.inserts.size(), 1u);
  EXPECT_EQ(churn.inserts.front().pred, *fx.vocab->FindPredicate("VU"));

  // Drain the base entirely: the image must follow it down to empty.
  std::vector<Fact> all = maintained.base().AllFacts();
  ImageDelta drain = maintained.ApplyDelta({}, all);
  ExpectImageFresh(maintained, "drain");
  EXPECT_EQ(maintained.image().num_facts(), 0u);
  EXPECT_TRUE(drain.inserts.empty());
}

TEST(MaintainedImage, VerdictOverMaintainedViewsEqualsFresh) {
  ReachFixture fx;
  MonDetResult before = CheckMonotonicDeterminacy(fx.query, fx.views);
  MaintainedImage maintained(fx.views, fx.base);
  EXPECT_EQ(maintained.RecheckVerdict(fx.query).verdict, before.verdict);

  // Churn the data; the verdict is a property of query + view
  // definitions, so the re-check must agree with a fresh run after any
  // schedule.
  ElemId d = maintained.AddElement("d");
  maintained.ApplyDelta({Fact(fx.r, {2, d})}, {Fact(fx.r, {0, 1})});
  ExpectImageFresh(maintained, "churned");
  MonDetResult after = maintained.RecheckVerdict(fx.query);
  EXPECT_EQ(after.verdict, before.verdict);
  EXPECT_EQ(after.verdict,
            CheckMonotonicDeterminacy(fx.query, fx.views).verdict);

  // The options overload reaches the same checker.
  MonDetOptions opts;
  opts.num_threads = 1;
  EXPECT_EQ(maintained.RecheckVerdict(fx.query, opts).verdict,
            before.verdict);
}

TEST(MaintainedImage, NotDeterminedStaysNotDeterminedUnderChurn) {
  // Lossy views (the join of R and S is not exposed): kNotDetermined,
  // and churning the instance cannot change a static verdict.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery("Q() :- R(x,y), S(y).", "Q", vocab);
  ViewSet views(vocab);
  views.AddCqView("VR", MustParseCq("VR(x) :- R(x,y).", vocab));
  views.AddCqView("VS", MustParseCq("VS(y) :- S(y).", vocab));
  PredId r = *vocab->FindPredicate("R"), s = *vocab->FindPredicate("S");

  Instance base(vocab);
  ElemId a = base.AddElement("a"), b = base.AddElement("b");
  base.AddFact(r, {a, b});

  MaintainedImage maintained(views, base);
  EXPECT_EQ(maintained.RecheckVerdict(q).verdict, Verdict::kNotDetermined);
  maintained.ApplyDelta({Fact(s, {b})}, {Fact(r, {a, b})});
  ExpectImageFresh(maintained, "churned");
  EXPECT_EQ(maintained.RecheckVerdict(q).verdict, Verdict::kNotDetermined);
}

TEST(ParseStream, BatchesElementsAndSigns) {
  auto vocab = MakeVocabulary();
  std::vector<Diagnostic> diags;
  auto base = ParseInstance("R(a,b). U(b).", vocab, &diags);
  ASSERT_TRUE(base.has_value()) << FormatDiagnostics(diags);
  PredId r = *vocab->FindPredicate("R"), u = *vocab->FindPredicate("U");

  auto stream = ParseStream(R"(
# one batch per non-empty line
+R(b,c). -U(b).
-R(a,b). +U(c). +R(b,c).
)",
                            vocab, *base, &diags);
  ASSERT_TRUE(stream.has_value()) << FormatDiagnostics(diags);
  // `c` is the only name the base does not know; it gets the next id.
  ASSERT_EQ(stream->new_elements, std::vector<std::string>{"c"});
  ElemId c = static_cast<ElemId>(base->num_elements());

  ASSERT_EQ(stream->batches.size(), 2u);
  const StreamBatch& b0 = stream->batches[0];
  EXPECT_EQ(b0.line, 3);
  // Elements a/b resolve to the base's like-named elements (a=0, b=1).
  EXPECT_EQ(b0.inserts, std::vector<Fact>{Fact(r, {1, c})});
  EXPECT_EQ(b0.deletes, std::vector<Fact>{Fact(u, {1})});
  const StreamBatch& b1 = stream->batches[1];
  EXPECT_EQ(b1.line, 4);
  EXPECT_EQ(b1.inserts, (std::vector<Fact>{Fact(u, {c}), Fact(r, {1, c})}));
  EXPECT_EQ(b1.deletes, std::vector<Fact>{Fact(r, {0, 1})});
}

TEST(ParseStream, RejectsMalformedInput) {
  struct Case {
    const char* text;
    const char* check;
    int line;
  };
  for (const Case& c : std::vector<Case>{
           {"R(a,b).", "parse", 1},          // missing sign
           {"+R(a,b)", "parse", 1},          // missing '.'
           {"\n+R(a,).", "parse", 2},        // missing element
           {"+R(a,b).\n+R(a).", "arity", 2}  // arity clash
       }) {
    auto vocab = MakeVocabulary();
    Instance base(vocab);
    std::vector<Diagnostic> diags;
    EXPECT_FALSE(ParseStream(c.text, vocab, base, &diags).has_value())
        << c.text;
    ASSERT_EQ(diags.size(), 1u) << c.text;
    EXPECT_EQ(diags[0].check, c.check) << c.text;
    EXPECT_EQ(diags[0].loc.line, c.line) << c.text;
  }
}

}  // namespace
}  // namespace mondet
