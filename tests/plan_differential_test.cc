// Plan-quality differential test for the statistics-driven join planner:
// on randomized programs × random bound instances, the stats-driven run
// must match the naive reference, 1- and 4-thread runs must be
// byte-identical, planner-off and feedback-off runs must derive the same
// set, no executed plan for a connected-join-graph rule may contain a
// cross product, and dataflow pruning must stay invisible.
//
// The generator and checker live in the shared randomized-testing
// library (testing/oracle.h, oracle `plan-differential`); `mondet-fuzz`
// drives the same property over open-ended seed ranges with shrinking.
// Failure messages carry the full generated case for `.repro` replay.

#include <gtest/gtest.h>

#include "testing/oracle.h"

namespace mondet {
namespace {

class PlanDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlanDifferential, StatsPlannerAgreesWithReference) {
  const testing::Oracle* oracle = testing::FindOracle("plan-differential");
  ASSERT_NE(oracle, nullptr);
  testing::OracleOutcome out = oracle->Check(oracle->Generate(GetParam()));
  EXPECT_TRUE(out.ok) << out.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanDifferential, ::testing::Range(0u, 200u));

}  // namespace
}  // namespace mondet
