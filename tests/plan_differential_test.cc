// Plan-quality differential oracle for the statistics-driven join
// planner: on ~200 random programs × random bound instances,
//   1. the stats-driven run (feedback corrections active) produces the
//      same fixpoint as the naive full-rescan reference,
//   2. 1-thread and 4-thread stats-driven runs produce byte-identical
//      fact sequences (planning, incremental stats maintenance, and the
//      feedback fold are all deterministic),
//   3. disabling the planner (compile-time orders) yields the same set,
//   4. disabling only the feedback corrections yields the same set (the
//      feedback arm: corrected estimates steer orders, never results),
//   5. no executed plan for a rule whose join graph is connected contains
//      a cross product — checked against the orders the run *actually*
//      used, reported through EvalStats (plan_stats), which under the
//      default options are orders planned from corrected estimates.

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "analysis/dataflow.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/program.h"
#include "tests/naive_eval.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

struct RandomSchema {
  VocabularyPtr vocab;
  // EDB predicates (arities 1, 2, 3) and IDB predicates (1, 2, 0): the
  // ternary EDB gives the planner rules where order genuinely matters.
  PredId e1, e2, e3, i1, i2, g0;
};

RandomSchema MakeSchema() {
  RandomSchema s;
  s.vocab = MakeVocabulary();
  s.e1 = s.vocab->AddPredicate("E1", 1);
  s.e2 = s.vocab->AddPredicate("E2", 2);
  s.e3 = s.vocab->AddPredicate("E3", 3);
  s.i1 = s.vocab->AddPredicate("I1", 1);
  s.i2 = s.vocab->AddPredicate("I2", 2);
  s.g0 = s.vocab->AddPredicate("G0", 0);
  return s;
}

/// A random safe rule: 1–4 body atoms over {E1, E2, E3, I1, I2} with
/// variables drawn from a small pool, head over {I1, I2, G0} with
/// arguments drawn from the variables actually used in the body.
Rule RandomRule(const RandomSchema& s, std::mt19937& rng) {
  std::uniform_int_distribution<int> nvars_dist(2, 5);
  std::uniform_int_distribution<int> natoms_dist(1, 4);
  const int nvars = nvars_dist(rng);
  const int natoms = natoms_dist(rng);
  std::uniform_int_distribution<int> var_dist(0, nvars - 1);
  const PredId body_preds[] = {s.e1, s.e2, s.e3, s.i1, s.i2};
  std::uniform_int_distribution<size_t> body_pred_dist(0, 4);

  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule rule;
  std::vector<VarId> remap(nvars, kUnmapped);
  auto used = [&](int raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("v" + std::to_string(raw));
    }
    return remap[raw];
  };
  for (int a = 0; a < natoms; ++a) {
    PredId p = body_preds[body_pred_dist(rng)];
    std::vector<VarId> args;
    for (int j = 0; j < s.vocab->arity(p); ++j) {
      args.push_back(used(var_dist(rng)));
    }
    rule.body.push_back(QAtom(p, args));
  }
  const PredId head_preds[] = {s.i1, s.i2, s.g0};
  std::uniform_int_distribution<size_t> head_pred_dist(0, 2);
  PredId hp = head_preds[head_pred_dist(rng)];
  std::uniform_int_distribution<size_t> body_var_dist(
      0, rule.var_names.size() - 1);
  std::vector<VarId> head_args;
  for (int j = 0; j < s.vocab->arity(hp); ++j) {
    head_args.push_back(static_cast<VarId>(body_var_dist(rng)));
  }
  rule.head = QAtom(hp, head_args);
  return rule;
}

Program RandomProgram(const RandomSchema& s, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(2, 6);
  Program program(s.vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) program.AddRule(RandomRule(s, rng));
  return program;
}

/// True when the rule's join graph — body atoms with variables as nodes,
/// edges between atoms sharing a variable — has a single component.
bool ConnectedJoinGraph(const Rule& rule) {
  std::vector<int> nodes;
  for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
    if (!rule.body[i].args.empty()) nodes.push_back(i);
  }
  if (nodes.size() <= 1) return true;
  std::vector<bool> seen(rule.body.size(), false);
  std::vector<int> stack = {nodes[0]};
  seen[nodes[0]] = true;
  size_t reached = 1;
  auto shares = [&](int a, int b) {
    for (VarId va : rule.body[a].args) {
      for (VarId vb : rule.body[b].args) {
        if (va == vb) return true;
      }
    }
    return false;
  };
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    for (int nxt : nodes) {
      if (!seen[nxt] && shares(cur, nxt)) {
        seen[nxt] = true;
        ++reached;
        stack.push_back(nxt);
      }
    }
  }
  return reached == nodes.size();
}

/// Replays one executed seat order and fails if any step joins an atom
/// with no bound variable while something is already bound (= cross
/// product). Nullary atoms are filters and exempt.
void ExpectNoCrossProduct(const Rule& rule, const JoinSeatStats& seat,
                          unsigned seed) {
  std::vector<bool> bound(rule.num_vars(), false);
  bool anything_bound = false;
  if (seat.delta_atom >= 0) {
    for (VarId v : rule.body[seat.delta_atom].args) bound[v] = true;
    anything_bound = !rule.body[seat.delta_atom].args.empty();
  }
  for (size_t k = 0; k < seat.order.size(); ++k) {
    const QAtom& atom = rule.body[seat.order[k]];
    bool shares = false;
    for (VarId v : atom.args) {
      if (bound[v]) shares = true;
    }
    EXPECT_TRUE(!anything_bound || shares || atom.args.empty())
        << "seed " << seed << ": cross product at step " << k << " of rule "
        << seat.rule << " (delta_atom " << seat.delta_atom << ")";
    for (VarId v : atom.args) bound[v] = true;
    if (!atom.args.empty()) anything_bound = true;
  }
}

class PlanDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlanDifferential, StatsPlansAgreeWithOracleAndAvoidCrossProducts) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  Program program = RandomProgram(s, 17000 + seed);
  // Half the cases include input IDB facts (FPEval is defined on
  // instances that may already mention IDB predicates, cf. Prop. 4).
  std::vector<PredId> inst_preds = {s.e1, s.e2, s.e3};
  if (seed % 2 == 1) {
    inst_preds.push_back(s.i1);
    inst_preds.push_back(s.i2);
  }
  Instance inst = RandomInstance(s.vocab, inst_preds, 5, 12, 19000 + seed);

  CompiledProgram compiled(program);
  Instance naive = NaiveFpEval(program, inst);

  // 1. Stats-driven vs the naive oracle: same fact set. The instances
  // here sit below the planner's default size gate, so force live
  // planning — the planner, not the gate, is under test.
  EvalOptions opt1;
  opt1.num_threads = 1;
  opt1.plan_stats = true;
  opt1.stats_min_facts = 0;
  opt1.dataflow_min_facts = 0;  // same reason: pruning itself is under test
  EvalStats stats1;
  Instance semi1 = compiled.Eval(inst, &stats1, opt1);
  ASSERT_EQ(naive.num_facts(), semi1.num_facts())
      << "seed " << seed << "\n"
      << program.DebugString();
  for (const Fact& f : naive.facts()) {
    EXPECT_TRUE(semi1.HasFact(f)) << "seed " << seed;
  }

  // 2. Thread-count determinism: identical fact sequences under identical
  // options (plan_stats stays on so the feedback fold runs in both).
  EvalOptions opt4 = opt1;
  opt4.num_threads = 4;
  Instance semi4 = compiled.Eval(inst, nullptr, opt4);
  ASSERT_EQ(semi1.num_facts(), semi4.num_facts()) << "seed " << seed;
  for (size_t i = 0; i < semi1.num_facts(); ++i) {
    EXPECT_EQ(semi1.facts()[i], semi4.facts()[i])
        << "seed " << seed << " fact " << i;
  }

  // 3. Planner off (compile-time EDB-first orders): same fact set.
  EvalOptions opt_static;
  opt_static.num_threads = 1;
  opt_static.stats_planner = false;
  Instance plain = compiled.Eval(inst, nullptr, opt_static);
  ASSERT_EQ(naive.num_facts(), plain.num_facts()) << "seed " << seed;
  for (const Fact& f : naive.facts()) {
    EXPECT_TRUE(plain.HasFact(f)) << "seed " << seed;
  }

  // 4. Feedback arm: corrections off — same fact set as the corrected
  // run (and as the oracle). Corrections may reorder joins mid-run,
  // never change what is derived.
  EvalOptions opt_nofb = opt1;
  opt_nofb.plan_feedback = false;
  Instance nofb = compiled.Eval(inst, nullptr, opt_nofb);
  ASSERT_EQ(naive.num_facts(), nofb.num_facts()) << "seed " << seed;
  for (const Fact& f : naive.facts()) {
    EXPECT_TRUE(nofb.HasFact(f)) << "seed " << seed;
  }

  // 5. No executed plan for a connected-join-graph rule contains a cross
  // product — under corrected estimates (stats1 comes from the
  // feedback-active run); estimates and measurements are exposed per
  // step.
  bool saw_seat = false;
  for (const StratumStats& ss : stats1.strata) {
    for (const JoinSeatStats& seat : ss.seats) {
      saw_seat = true;
      const Rule& rule = program.rules()[seat.rule];
      ASSERT_EQ(seat.order.size(),
                rule.body.size() - (seat.delta_atom >= 0 ? 1 : 0));
      EXPECT_EQ(seat.est_rows.size(), seat.order.size());
      EXPECT_EQ(seat.actual_rows.size(), seat.order.size());
      if (ConnectedJoinGraph(rule)) {
        ExpectNoCrossProduct(rule, seat, seed);
      }
    }
  }
  // Provably-dead rules are never seated (dataflow pruning, on by
  // default), so seats appear exactly when some rule is live.
  const std::vector<bool> dead = DeadRuleMask(program, inst);
  size_t n_dead = 0;
  for (bool d : dead) n_dead += d ? 1 : 0;
  if (n_dead < dead.size()) {
    EXPECT_TRUE(saw_seat) << "plan_stats produced no seat observations";
  }
  EXPECT_EQ(stats1.rules_pruned, n_dead) << "seed " << seed;

  // 6. Dataflow pruning off: byte-identical fact sequence to the pruned
  // stats-driven runs at both thread counts (pruning only skips rules
  // that derive nothing, so it is invisible in the result).
  EvalOptions opt_noprune1 = opt1;
  opt_noprune1.dataflow_prune = false;
  EvalOptions opt_noprune4 = opt4;
  opt_noprune4.dataflow_prune = false;
  EvalStats stats_np;
  Instance noprune1 = compiled.Eval(inst, &stats_np, opt_noprune1);
  Instance noprune4 = compiled.Eval(inst, nullptr, opt_noprune4);
  EXPECT_EQ(stats_np.rules_pruned, 0u);
  ASSERT_EQ(semi1.num_facts(), noprune1.num_facts()) << "seed " << seed;
  ASSERT_EQ(semi1.num_facts(), noprune4.num_facts()) << "seed " << seed;
  for (size_t i = 0; i < semi1.num_facts(); ++i) {
    EXPECT_EQ(semi1.facts()[i], noprune1.facts()[i])
        << "seed " << seed << " fact " << i;
    EXPECT_EQ(semi1.facts()[i], noprune4.facts()[i])
        << "seed " << seed << " fact " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanDifferential, ::testing::Range(0u, 200u));

}  // namespace
}  // namespace mondet
