#include <gtest/gtest.h>

#include "core/backward.h"
#include "core/forward.h"
#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "datalog/normalize.h"
#include "datalog/parser.h"
#include "reductions/thm6_stratified.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

// ---------- Frontier-one (MDL) backward mapping -------------------------

TEST(MdlBackward, ReachQueryRoundTripsAsMdl) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x), M(x).
  )",
                                  "Goal", vocab);
  ForwardResult fwd = ApproximationAutomaton(q);
  std::vector<PredId> schema{*vocab->FindPredicate("R"),
                             *vocab->FindPredicate("U"),
                             *vocab->FindPredicate("M")};
  DatalogQuery back = BackwardMappingMdl(fwd.automaton, schema, vocab);
  EXPECT_TRUE(IsMonadic(back.program)) << back.program.DebugString();
  for (unsigned seed = 0; seed < 25; ++seed) {
    Instance inst = RandomInstance(vocab, schema, 4, 8, 1700 + seed);
    EXPECT_EQ(DatalogHoldsOn(q, inst), DatalogHoldsOn(back, inst))
        << "seed " << seed;
  }
}

TEST(MdlBackward, NormalizedQueryRoundTrips) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    A(x) :- U(x).
    A(x) :- R(x,y), A(y), B(y).
    B(x) :- M(x).
    Goal() :- A(x), S(x).
  )",
                                  "Goal", vocab);
  DatalogQuery normalized = NormalizeMdl(q);
  ForwardResult fwd = ApproximationAutomaton(normalized);
  std::vector<PredId> schema{
      *vocab->FindPredicate("R"), *vocab->FindPredicate("U"),
      *vocab->FindPredicate("M"), *vocab->FindPredicate("S")};
  DatalogQuery back = BackwardMappingMdl(fwd.automaton, schema, vocab);
  EXPECT_TRUE(IsMonadic(back.program));
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, schema, 4, 8, 1800 + seed);
    EXPECT_EQ(DatalogHoldsOn(q, inst), DatalogHoldsOn(back, inst))
        << "seed " << seed;
  }
}

// ---------- Bounded Datalog containment ---------------------------------

TEST(BoundedContainment, ExactOnNonRecursive) {
  auto vocab = MakeVocabulary();
  DatalogQuery q1 = MustParseQuery("G1() :- R(x,y), R(y,z).", "G1", vocab);
  DatalogQuery q2 = MustParseQuery("G2() :- R(x,y).", "G2", vocab);
  BoundedContainment fwd = CheckDatalogContainmentBounded(q1, q2, 3);
  EXPECT_FALSE(fwd.refuted);
  EXPECT_TRUE(fwd.exhaustive);  // proves Q1 ⊑ Q2
  BoundedContainment bwd = CheckDatalogContainmentBounded(q2, q1, 3);
  EXPECT_TRUE(bwd.refuted);
  ASSERT_TRUE(bwd.witness.has_value());
  EXPECT_TRUE(DatalogHoldsOn(q2, *bwd.witness));
  EXPECT_FALSE(DatalogHoldsOn(q1, *bwd.witness));
}

TEST(BoundedContainment, RecursiveRefutation) {
  auto vocab = MakeVocabulary();
  DatalogQuery reach = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    G1() :- P(x).
  )",
                                      "G1", vocab);
  DatalogQuery edge_to_u =
      MustParseQuery("G2() :- R(x,y), U(y).", "G2", vocab);
  // reach ⋢ edge_to_u: the depth-1 expansion U(x) has no edge.
  BoundedContainment result =
      CheckDatalogContainmentBounded(reach, edge_to_u, 4);
  EXPECT_TRUE(result.refuted);
  // edge_to_u ⊑ reach: exhaustively provable (left side non-recursive).
  BoundedContainment other =
      CheckDatalogContainmentBounded(edge_to_u, reach, 3);
  EXPECT_FALSE(other.refuted);
  EXPECT_TRUE(other.exhaustive);
}

TEST(BoundedContainment, NonBooleanTuples) {
  auto vocab = MakeVocabulary();
  DatalogQuery q1 = MustParseQuery("G1(x,z) :- R(x,y), R(y,z).", "G1", vocab);
  DatalogQuery q2 = MustParseQuery("G2(x,z) :- R(x,y), R(y,z).", "G2", vocab);
  DatalogQuery flipped =
      MustParseQuery("G3(z,x) :- R(x,y), R(y,z).", "G3", vocab);
  EXPECT_FALSE(CheckDatalogContainmentBounded(q1, q2, 3).refuted);
  EXPECT_TRUE(CheckDatalogContainmentBounded(q1, flipped, 3).refuted);
}

// ---------- Non-Boolean monotonic determinacy ----------------------------

TEST(NonBooleanMonDet, DeterminedPairQuery) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery("Q(x,z) :- R(x,y), R(y,z).", "Q", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddCqView("V", *ParseCq("V(x,z) :- R(x,y), R(y,z).", vocab, &error));
  MonDetResult result = CheckMonotonicDeterminacy(*q, views);
  EXPECT_EQ(result.verdict, Verdict::kDetermined);
}

TEST(NonBooleanMonDet, FrontierLostRefuted) {
  // The answer variable is invisible in the view: the frontier tuple
  // cannot be certain.
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery("Q(x) :- R(x,y).", "Q", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddCqView("V", *ParseCq("V(y) :- R(x,y).", vocab, &error));
  MonDetResult result = CheckMonotonicDeterminacy(*q, views);
  EXPECT_EQ(result.verdict, Verdict::kNotDetermined);
}

// ---------- Stratified rewriting (appendix) ------------------------------

class StratifiedTest : public ::testing::Test {
 protected:
  StratifiedTest() : gadget_(BuildThm6(UnsolvableTilingProblem())) {}
  Thm6Gadget gadget_;

  bool Agrees(const Instance& inst) {
    bool direct = DatalogHoldsOn(gadget_.query, inst);
    bool stratified =
        StratifiedRewritingHolds(gadget_, gadget_.views.Image(inst));
    return direct == stratified;
  }
};

TEST_F(StratifiedTest, AgreesOnAxes) {
  for (int n = 1; n <= 3; ++n) {
    EXPECT_TRUE(Agrees(gadget_.MakeAxes(n, n))) << n;
    EXPECT_TRUE(Agrees(gadget_.MakeAxes(n, 1))) << n;
  }
}

TEST_F(StratifiedTest, AgreesOnGridTests) {
  // Grid tests over the unsolvable problem's single tile.
  for (int n = 1; n <= 3; ++n) {
    std::vector<int> tiles(static_cast<size_t>(n) * n, 0);
    EXPECT_TRUE(Agrees(gadget_.MakeGridTest(n, n, tiles))) << n;
  }
}

TEST_F(StratifiedTest, AgreesOnRandomInstances) {
  std::vector<PredId> preds{gadget_.xsucc, gadget_.ysucc, gadget_.cpred,
                            gadget_.dpred, gadget_.xend,  gadget_.yend,
                            gadget_.xproj, gadget_.yproj};
  preds.insert(preds.end(), gadget_.tile_preds.begin(),
               gadget_.tile_preds.end());
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(gadget_.vocab, preds, 4, 8, 1900 + seed);
    EXPECT_TRUE(Agrees(inst)) << "seed " << seed << "\n"
                              << inst.DebugString();
  }
}

TEST_F(StratifiedTest, SolvableProblemStillAgreesOnImages) {
  // For the parity problem of Thm 8 (no solutions), the appendix claims
  // the stratified rewriting is exact — exercised on mixed instances.
  Thm6Gadget parity = BuildThm6(SolvableTilingProblem());
  // NOTE: with a solvable problem the query is NOT determined, so the
  // stratified formula need not be a rewriting; we only check it stays
  // sound on instances where Q holds via the helper/verify disjuncts.
  Instance axes = parity.MakeAxes(2, 2);
  EXPECT_TRUE(DatalogHoldsOn(parity.query, axes));
  EXPECT_TRUE(StratifiedRewritingHolds(parity, parity.views.Image(axes)));
}

}  // namespace
}  // namespace mondet
