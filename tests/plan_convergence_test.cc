// Convergence regression for the feedback-corrected planner on the
// Figure 4 row family (the long-R-rows workload of bench_fig4_longrows):
// evaluating the inverse-rules rewriting over the view image of a diamond
// chain, the worst per-step estimation error — max over executed join
// steps of max(est/actual, actual/est) on per-seeding fanouts — must
// strictly improve after two feedback rounds through an
// EvalOptions::feedback accumulator, and the before/after ratios are
// pinned so a regression in either the estimator or the feedback fold
// shows up as a number, not a vague slowdown.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "base/stats.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "reductions/thm7.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

/// Worst per-step fanout error across every executed seat: estimates and
/// measurements are normalized per seeding (JoinSeatStats::seedings) so
/// the two are comparable; steps with no signal (zero rows on either
/// side) are skipped, exactly as the feedback fold skips them.
double MaxStepRatio(const EvalStats& stats) {
  double worst = 1.0;
  for (const StratumStats& ss : stats.strata) {
    for (const JoinSeatStats& seat : ss.seats) {
      if (seat.seedings == 0 || seat.est_rows.size() != seat.order.size()) {
        continue;
      }
      for (size_t step = 0; step < seat.order.size(); ++step) {
        double est_prev = step == 0 ? 1.0 : seat.est_rows[step - 1];
        double act_prev = step == 0 ? static_cast<double>(seat.seedings)
                                    : static_cast<double>(
                                          seat.actual_rows[step - 1]);
        if (!(est_prev > 0.0) || act_prev <= 0.0) break;
        double est = seat.est_rows[step] / est_prev;
        double act = static_cast<double>(seat.actual_rows[step]) / act_prev;
        if (!(est > 0.0) || act <= 0.0) continue;
        worst = std::max(worst, std::max(est / act, act / est));
      }
    }
  }
  return worst;
}

TEST(PlanConvergenceTest, FeedbackShrinksWorstEstimationError) {
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(24));

  EvalOptions base;
  base.num_threads = 1;  // pinned numbers come from the deterministic run
  base.plan_stats = true;
  base.stats_min_facts = 0;  // force live planning on this small image

  // Round 0: corrections disabled — the uncorrected estimator's error.
  EvalOptions uncorrected = base;
  uncorrected.plan_feedback = false;
  EvalStats stats0;
  Instance fix0 = compiled.Eval(image, &stats0, uncorrected);
  ASSERT_FALSE(fix0.NumRows(rewriting.goal) == 0);
  EXPECT_EQ(stats0.corrections_active, 0u);
  const double before = MaxStepRatio(stats0);
  ASSERT_GT(before, 1.0) << "workload has no estimation error to correct";

  // Two feedback rounds through a cross-run accumulator: round 1 learns,
  // round 2 plans (and is measured) under the imported corrections.
  Stats feedback;
  EvalOptions corrected = base;
  corrected.feedback = &feedback;
  EvalStats stats1;
  Instance fix1 = compiled.Eval(image, &stats1, corrected);
  EXPECT_GT(feedback.ActiveCorrections(), 0u);
  EvalStats stats2;
  Instance fix2 = compiled.Eval(image, &stats2, corrected);
  const double after = MaxStepRatio(stats2);

  // Corrections steer orders, never results.
  ASSERT_EQ(fix0.num_facts(), fix1.num_facts());
  ASSERT_EQ(fix0.num_facts(), fix2.num_facts());
  for (const Fact& f : fix0.AllFacts()) {
    EXPECT_TRUE(fix2.HasFact(f));
  }

  // The regression pin: strict improvement, and both endpoints anchored.
  EXPECT_LT(after, before);
  EXPECT_GT(stats2.corrections_active, 0u);
  EXPECT_GT(stats2.stats_applies, 0u);
  RecordProperty("max_ratio_before", std::to_string(before));
  RecordProperty("max_ratio_after", std::to_string(after));
  // The workload's worst step probes a relation the estimator believes is
  // nearly empty; with per-(pred,pos) factors the correction saturates at
  // the 16x clamp on each of the step's two bound positions, so two
  // rounds improve the worst ratio by exactly 16^2 (the scalar-only
  // planner managed a single 16x here).
  EXPECT_NEAR(before, 279841.0, 1.0);
  EXPECT_NEAR(after, 1093.12890625, 1.0);
  EXPECT_NEAR(before / after, 256.0, 1e-6);
}

TEST(PlanConvergenceTest, PositionalCorrectionsConvergePerPosition) {
  // Satellite pin for the per-(pred,pos) correction factors: the same
  // Figure 4 workload, one learning round. The estimator's blind spot is
  // positional (join selectivity on specific argument positions, not the
  // relation's overall cardinality), so the learned signal must land in
  // pos_correction, saturate at the per-factor clamp on the worst
  // positions, and leave the scalar factors milder than the positional
  // ones it replaced.
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(24));

  Stats feedback;
  EvalOptions options;
  options.num_threads = 1;
  options.plan_stats = true;  // per-step actuals feed the fold
  options.stats_min_facts = 0;  // force live planning on this small image
  options.feedback = &feedback;
  // Two learning rounds, the same discipline as FeedbackShrinks: the
  // per-round nudge is ratio^(1/(2k)) per bound position, so the worst
  // positions need the second round to reach the clamp.
  compiled.Eval(image, nullptr, options);
  compiled.Eval(image, nullptr, options);
  ASSERT_GT(feedback.ActiveCorrections(), 0u);

  const VocabularyPtr& vocab = rewriting.program.vocab();
  size_t corrected_positions = 0;
  double max_factor = 0.0;
  double min_factor = 1e9;
  for (PredId p : vocab->AllPredicates()) {
    for (int pos = 0; pos < vocab->arity(p); ++pos) {
      const double c = feedback.pos_correction(p, pos);
      if (c == 1.0) continue;
      ++corrected_positions;
      max_factor = std::max(max_factor, c);
      min_factor = std::min(min_factor, c);
    }
  }
  RecordProperty("corrected_positions", std::to_string(corrected_positions));
  RecordProperty("max_factor", std::to_string(max_factor));
  RecordProperty("min_factor", std::to_string(min_factor));
  // The pins: several distinct positions carry signal, the worst ones hit
  // the 16x clamp exactly, and downward factors stay above the 1/16
  // floor. Exact counts anchored so a fold regression shows as a number
  // (23 with this workload below the dataflow gate — two extra dead-rule
  // seats run, and their steps carry positional signal too).
  EXPECT_EQ(corrected_positions, 23u);
  EXPECT_DOUBLE_EQ(max_factor, 16.0);
  EXPECT_GE(min_factor, 1.0 / 16.0);
}

TEST(PlanConvergenceTest, IncrementalMaintenanceCountsOnlyDeltas) {
  // The O(stratum facts) -> O(delta) drop of the tentpole, asserted on
  // counters rather than wall time: the incremental run's statistics
  // machinery touches strictly fewer facts than the recount discipline
  // on the same workload.
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(24));

  EvalOptions incremental;
  incremental.num_threads = 1;
  incremental.stats_min_facts = 0;  // force live planning on this image
  EvalStats inc_stats;
  Instance inc = compiled.Eval(image, &inc_stats, incremental);

  EvalOptions recount = incremental;
  recount.stats_incremental = false;
  EvalStats rec_stats;
  Instance rec = compiled.Eval(image, &rec_stats, recount);

  ASSERT_EQ(inc.num_facts(), rec.num_facts());
  EXPECT_GT(inc_stats.stats_applies, 0u);
  EXPECT_EQ(rec_stats.stats_applies, 0u);
  EXPECT_LT(inc_stats.stats_facts_counted, rec_stats.stats_facts_counted);
}

TEST(PlanConvergenceTest, DescribePlansTextRendersCorrectionTable) {
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  Instance image = gadget.views.Image(gadget.DiamondChain(8));

  Stats feedback;
  {
    CompiledProgram compiled(rewriting.program);
    EvalOptions options;
    options.num_threads = 1;
    options.plan_stats = true;
    options.stats_min_facts = 0;  // force live planning on this image
    options.feedback = &feedback;
    compiled.Eval(image, nullptr, options);
  }
  ASSERT_GT(feedback.ActiveCorrections(), 0u);

  CompiledProgram described(rewriting.program);
  Stats snapshot = Stats::Collect(image);
  snapshot.ImportCorrections(feedback);
  described.BindStats(snapshot);
  std::string text = described.DescribePlansText();
  EXPECT_NE(text.find("corrections:"), std::string::npos) << text;
  // Without corrections the table is absent.
  CompiledProgram plain(rewriting.program);
  plain.BindStats(Stats::Collect(image));
  EXPECT_EQ(plain.DescribePlansText().find("corrections:"),
            std::string::npos);
}

}  // namespace
}  // namespace mondet
