// Convergence regression for the feedback-corrected planner on the
// Figure 4 row family (the long-R-rows workload of bench_fig4_longrows):
// evaluating the inverse-rules rewriting over the view image of a diamond
// chain, the worst per-step estimation error — max over executed join
// steps of max(est/actual, actual/est) on per-seeding fanouts — must
// strictly improve after two feedback rounds through an
// EvalOptions::feedback accumulator, and the before/after ratios are
// pinned so a regression in either the estimator or the feedback fold
// shows up as a number, not a vague slowdown.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "base/stats.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "reductions/thm7.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

/// Worst per-step fanout error across every executed seat: estimates and
/// measurements are normalized per seeding (JoinSeatStats::seedings) so
/// the two are comparable; steps with no signal (zero rows on either
/// side) are skipped, exactly as the feedback fold skips them.
double MaxStepRatio(const EvalStats& stats) {
  double worst = 1.0;
  for (const StratumStats& ss : stats.strata) {
    for (const JoinSeatStats& seat : ss.seats) {
      if (seat.seedings == 0 || seat.est_rows.size() != seat.order.size()) {
        continue;
      }
      for (size_t step = 0; step < seat.order.size(); ++step) {
        double est_prev = step == 0 ? 1.0 : seat.est_rows[step - 1];
        double act_prev = step == 0 ? static_cast<double>(seat.seedings)
                                    : static_cast<double>(
                                          seat.actual_rows[step - 1]);
        if (!(est_prev > 0.0) || act_prev <= 0.0) break;
        double est = seat.est_rows[step] / est_prev;
        double act = static_cast<double>(seat.actual_rows[step]) / act_prev;
        if (!(est > 0.0) || act <= 0.0) continue;
        worst = std::max(worst, std::max(est / act, act / est));
      }
    }
  }
  return worst;
}

TEST(PlanConvergenceTest, FeedbackShrinksWorstEstimationError) {
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(24));

  EvalOptions base;
  base.num_threads = 1;  // pinned numbers come from the deterministic run
  base.plan_stats = true;

  // Round 0: corrections disabled — the uncorrected estimator's error.
  EvalOptions uncorrected = base;
  uncorrected.plan_feedback = false;
  EvalStats stats0;
  Instance fix0 = compiled.Eval(image, &stats0, uncorrected);
  ASSERT_FALSE(fix0.FactsWith(rewriting.goal).empty());
  EXPECT_EQ(stats0.corrections_active, 0u);
  const double before = MaxStepRatio(stats0);
  ASSERT_GT(before, 1.0) << "workload has no estimation error to correct";

  // Two feedback rounds through a cross-run accumulator: round 1 learns,
  // round 2 plans (and is measured) under the imported corrections.
  Stats feedback;
  EvalOptions corrected = base;
  corrected.feedback = &feedback;
  EvalStats stats1;
  Instance fix1 = compiled.Eval(image, &stats1, corrected);
  EXPECT_GT(feedback.ActiveCorrections(), 0u);
  EvalStats stats2;
  Instance fix2 = compiled.Eval(image, &stats2, corrected);
  const double after = MaxStepRatio(stats2);

  // Corrections steer orders, never results.
  ASSERT_EQ(fix0.num_facts(), fix1.num_facts());
  ASSERT_EQ(fix0.num_facts(), fix2.num_facts());
  for (const Fact& f : fix0.facts()) {
    EXPECT_TRUE(fix2.HasFact(f));
  }

  // The regression pin: strict improvement, and both endpoints anchored.
  EXPECT_LT(after, before);
  EXPECT_GT(stats2.corrections_active, 0u);
  EXPECT_GT(stats2.stats_applies, 0u);
  RecordProperty("max_ratio_before", std::to_string(before));
  RecordProperty("max_ratio_after", std::to_string(after));
  // The workload's worst step probes a relation the estimator believes is
  // nearly empty; the corrections saturate at the 16x clamp, so two
  // rounds improve the worst ratio by exactly that factor.
  EXPECT_NEAR(before, 279841.0, 1.0);
  EXPECT_NEAR(after, 17490.0625, 1.0);
  EXPECT_NEAR(before / after, 16.0, 1e-6);
}

TEST(PlanConvergenceTest, IncrementalMaintenanceCountsOnlyDeltas) {
  // The O(stratum facts) -> O(delta) drop of the tentpole, asserted on
  // counters rather than wall time: the incremental run's statistics
  // machinery touches strictly fewer facts than the recount discipline
  // on the same workload.
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(24));

  EvalOptions incremental;
  incremental.num_threads = 1;
  EvalStats inc_stats;
  Instance inc = compiled.Eval(image, &inc_stats, incremental);

  EvalOptions recount = incremental;
  recount.stats_incremental = false;
  EvalStats rec_stats;
  Instance rec = compiled.Eval(image, &rec_stats, recount);

  ASSERT_EQ(inc.num_facts(), rec.num_facts());
  EXPECT_GT(inc_stats.stats_applies, 0u);
  EXPECT_EQ(rec_stats.stats_applies, 0u);
  EXPECT_LT(inc_stats.stats_facts_counted, rec_stats.stats_facts_counted);
}

TEST(PlanConvergenceTest, DescribePlansTextRendersCorrectionTable) {
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  Instance image = gadget.views.Image(gadget.DiamondChain(8));

  Stats feedback;
  {
    CompiledProgram compiled(rewriting.program);
    EvalOptions options;
    options.num_threads = 1;
    options.plan_stats = true;
    options.feedback = &feedback;
    compiled.Eval(image, nullptr, options);
  }
  ASSERT_GT(feedback.ActiveCorrections(), 0u);

  CompiledProgram described(rewriting.program);
  Stats snapshot = Stats::Collect(image);
  snapshot.ImportCorrections(feedback);
  described.BindStats(snapshot);
  std::string text = described.DescribePlansText();
  EXPECT_NE(text.find("corrections:"), std::string::npos) << text;
  // Without corrections the table is absent.
  CompiledProgram plain(rewriting.program);
  plain.BindStats(Stats::Collect(image));
  EXPECT_EQ(plain.DescribePlansText().find("corrections:"),
            std::string::npos);
}

}  // namespace
}  // namespace mondet
