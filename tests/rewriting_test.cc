#include <gtest/gtest.h>

#include "core/mondet_check.h"
#include "core/rewriting.h"
#include "cq/containment.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

CQ MustParseCq(const std::string& text, const VocabularyPtr& vocab) {
  std::string error;
  auto cq = ParseCq(text, vocab, &error);
  EXPECT_TRUE(cq.has_value()) << error;
  return *cq;
}

TEST(Prop8, CqRewritingOverCqViews) {
  // Determined case: the simple forward-backward rewriting is exact.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), R(y,z).", vocab);
  ViewSet views(vocab);
  views.AddCqView("V", MustParseCq("V(x,z) :- R(x,y), R(y,z).", vocab));
  auto rewriting = SimpleCqRewriting(q, views);
  ASSERT_TRUE(rewriting.has_value());
  PredId r = *vocab->FindPredicate("R");
  for (unsigned seed = 0; seed < 25; ++seed) {
    Instance inst = RandomInstance(vocab, {r}, 4, 6, 120 + seed);
    EXPECT_EQ(q.HoldsOn(inst), rewriting->HoldsOn(views.Image(inst)))
        << "seed " << seed;
  }
}

TEST(Prop8, CqRewritingOverDatalogViews) {
  // Prop. 8 holds for arbitrary Datalog views: Q = ∃x U(x) with a
  // recursive view and a U-view.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- U(x).", vocab);
  std::string error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery(
      "Reach(x) :- R(x,y), U(y).\nReach(x) :- R(x,y), Reach(y).", "Reach",
      vocab, &diags);
  ASSERT_TRUE(def) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddView("VReach", *def);
  views.AddCqView("VU", MustParseCq("VU(x) :- U(x).", vocab));
  auto rewriting = SimpleCqRewriting(q, views);
  ASSERT_TRUE(rewriting.has_value());
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  for (unsigned seed = 0; seed < 25; ++seed) {
    Instance inst = RandomInstance(vocab, {r, u}, 4, 6, 220 + seed);
    EXPECT_EQ(q.HoldsOn(inst), rewriting->HoldsOn(views.Image(inst)))
        << "seed " << seed;
  }
}

TEST(Prop8, RewritingSizePolynomial) {
  // |V(Q)| is bounded by the number of view matches on Canondb(Q).
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), R(y,z), R(z,w).", vocab);
  ViewSet views(vocab);
  views.AddCqView("V", MustParseCq("V(x,y) :- R(x,y).", vocab));
  auto rewriting = SimpleCqRewriting(q, views);
  ASSERT_TRUE(rewriting.has_value());
  EXPECT_EQ(rewriting->atoms().size(), 3u);
}

TEST(Prop8, UcqRewritingPerDisjunct) {
  auto vocab = MakeVocabulary();
  std::string error;
  auto ucq = ParseUcq("Q() :- R(x,y), R(y,z).\nQ() :- S(x).", vocab, &error);
  ASSERT_TRUE(ucq) << error;
  ViewSet views(vocab);
  views.AddCqView("V", MustParseCq("V(x,z) :- R(x,y), R(y,z).", vocab));
  views.AddAtomicView("VS", *vocab->FindPredicate("S"));
  auto rewriting = SimpleUcqRewriting(*ucq, views);
  ASSERT_TRUE(rewriting.has_value());
  EXPECT_EQ(rewriting->disjuncts().size(), 2u);
  PredId r = *vocab->FindPredicate("R");
  PredId s = *vocab->FindPredicate("S");
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, {r, s}, 4, 5, 320 + seed);
    EXPECT_EQ(ucq->HoldsOn(inst), rewriting->HoldsOn(views.Image(inst)))
        << "seed " << seed;
  }
}

TEST(Prop8, NonBooleanRewritingKeepsFreeVars) {
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q(x,z) :- R(x,y), R(y,z).", vocab);
  ViewSet views(vocab);
  views.AddCqView("V", MustParseCq("V(x,z) :- R(x,y), R(y,z).", vocab));
  auto rewriting = SimpleCqRewriting(q, views);
  ASSERT_TRUE(rewriting.has_value());
  EXPECT_EQ(rewriting->arity(), 2);
  PredId r = *vocab->FindPredicate("R");
  Instance path = MakePath(vocab, r, 4);
  EXPECT_EQ(q.Evaluate(path), rewriting->Evaluate(views.Image(path)));
}

TEST(Prop8, UnsafeRewritingReported) {
  // A free variable invisible to the views: no safe CQ rewriting.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q(x) :- R(x,y), S(y).", vocab);
  ViewSet views(vocab);
  views.AddAtomicView("VS", *vocab->FindPredicate("S"));
  auto rewriting = SimpleCqRewriting(q, views);
  EXPECT_FALSE(rewriting.has_value());
}

TEST(ComposeWithViews, EquivalentToImageEvaluation) {
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), R(y,z).", vocab);
  ViewSet views(vocab);
  views.AddCqView("V", MustParseCq("V(x,z) :- R(x,y), R(y,z).", vocab));
  auto rewriting = SimpleCqRewriting(q, views);
  ASSERT_TRUE(rewriting.has_value());
  DatalogQuery rw = CqAsDatalog(*rewriting, "RW");
  DatalogQuery composed = ComposeWithViews(rw, views);
  PredId r = *vocab->FindPredicate("R");
  for (unsigned seed = 0; seed < 15; ++seed) {
    Instance inst = RandomInstance(vocab, {r}, 4, 6, 420 + seed);
    EXPECT_EQ(DatalogHoldsOn(rw, views.Image(inst)),
              DatalogHoldsOn(composed, inst))
        << "seed " << seed;
    EXPECT_TRUE(RewritingAgreesOn(CqAsDatalog(q, "QD"), rw, views, inst));
  }
}

}  // namespace
}  // namespace mondet
