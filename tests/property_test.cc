// Property-based suites: parameterized sweeps checking cross-module
// invariants (evaluator agreement, soundness of certain answers, game /
// homomorphism consistency, code round-trips) on randomized inputs.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <tuple>

#include "base/homomorphism.h"
#include "core/cq_automaton.h"
#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "games/pebble.h"
#include "testing/reference.h"
#include "tests/test_util.h"
#include "tree/code.h"
#include "tree/decompose.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

// ---------- Semi-naive FPEval vs. a naive reference evaluator ------------

// NaiveFpEval lives in src/testing/reference.h (shared with the
// differential oracles and the mondet-fuzz harness).

class SeminaiveVsNaive : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeminaiveVsNaive, SameFixpoint) {
  unsigned seed = GetParam();
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    T(x,y) :- R(x,y), P(y).
    T(x,z) :- T(x,y), T(y,z).
    Goal() :- T(x,x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  Instance inst = RandomInstance(vocab, {r, u}, 5, 9, 2100 + seed);
  Instance fast = FpEval(q->program, inst);
  Instance slow = NaiveFpEval(q->program, inst);
  EXPECT_EQ(fast.num_facts(), slow.num_facts()) << "seed " << seed;
  for (const Fact& f : slow.AllFacts()) {
    EXPECT_TRUE(fast.HasFact(f)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeminaiveVsNaive, ::testing::Range(0u, 12u));

// ---------- CQ DP evaluator agrees with direct evaluation ----------------

class CqDpAgreement
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>> {};

TEST_P(CqDpAgreement, MatchesHomomorphismSearch) {
  const auto& [query_text, seed] = GetParam();
  auto vocab = MakeVocabulary();
  std::string error;
  auto cq = ParseCq(query_text, vocab, &error);
  ASSERT_TRUE(cq) << error;
  PredId r = *vocab->FindPredicate("R");
  std::vector<PredId> preds{r};
  if (auto u = vocab->FindPredicate("U")) preds.push_back(*u);
  Instance inst = RandomInstance(vocab, preds, 5, 8, 2200 + seed);
  TreeDecomposition td = Binarize(DecomposeMinFill(inst));
  TreeCode code = EncodeInstance(inst, td, td.width());
  CqMatchAutomaton dp(*cq, td.width());
  std::vector<uint32_t> states(code.nodes.size());
  std::function<void(int)> visit = [&](int n) {
    const CodeNode& node = code.nodes[n];
    for (int c : node.children) visit(c);
    NodeLabel label(node.atoms.begin(), node.atoms.end());
    if (node.children.empty()) {
      states[n] = dp.Leaf(label);
    } else if (node.children.size() == 1) {
      states[n] = dp.Unary(states[node.children[0]], label,
                           node.edge_labels[0]);
    } else {
      states[n] = dp.Binary(states[node.children[0]], states[node.children[1]],
                            label, node.edge_labels[0], node.edge_labels[1]);
    }
  };
  visit(0);
  EXPECT_EQ(dp.Accepting(states[0]), cq->HoldsOn(inst))
      << query_text << " seed " << seed << "\n"
      << inst.DebugString();
}

INSTANTIATE_TEST_SUITE_P(
    QueriesBySeed, CqDpAgreement,
    ::testing::Combine(
        ::testing::Values("Q() :- R(x,y), R(y,z).", "Q() :- R(x,x).",
                          "Q() :- R(x,y), R(y,x).",
                          "Q() :- R(x,y), R(y,z), R(z,x).",
                          "Q() :- R(x,y), U(y), R(y,z)."),
        ::testing::Range(0u, 8u)));

// ---------- Certain answers are sound (and exact on view images) ---------

class CertainAnswerSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(CertainAnswerSoundness, LowerBoundsTruth) {
  unsigned seed = GetParam();
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  views.AddCqView("VRU", *ParseCq("VRU(x,y) :- R(x,y), U(y).", vocab, &error));
  views.AddCqView("VR", *ParseCq("VR(x) :- R(x,y).", vocab, &error));
  Instance inst = RandomInstance(vocab, {r, u}, 4, 7, 2300 + seed);
  Instance image = views.Image(inst);
  auto certain = CertainAnswers(*q, views, image);
  // Soundness: certainty implies truth.
  if (!certain.empty()) {
    EXPECT_TRUE(DatalogHoldsOn(*q, inst)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertainAnswerSoundness,
                         ::testing::Range(0u, 15u));

// ---------- Pebble game is sandwiched by homomorphisms -------------------

class GameSandwich
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(GameSandwich, HomImpliesWinImpliesNoRefutation) {
  const auto& [k, seed] = GetParam();
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId u = vocab->AddPredicate("U", 1);
  Instance a = RandomInstance(vocab, {r, u}, 4, 6, 2400 + seed);
  Instance b = RandomInstance(vocab, {r, u}, 4, 7, 2500 + seed);
  bool hom = HasHomomorphism(a, b);
  bool game = DuplicatorWins(a, b, k);
  // Fact 1 direction: a homomorphism gives a Duplicator strategy.
  if (hom) {
    EXPECT_TRUE(game) << "k=" << k << " seed " << seed;
  }
  // Monotonicity in k.
  if (k > 2) {
    bool weaker = DuplicatorWins(a, b, k - 1);
    EXPECT_LE(game, weaker) << "k=" << k << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(KBySeed, GameSandwich,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Range(0u, 8u)));

// ---------- Codes decode to hom-equivalent instances ---------------------

class CodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodeRoundTrip, DecodePreservesStructure) {
  unsigned seed = GetParam();
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId t = vocab->AddPredicate("T", 3);
  PredId u = vocab->AddPredicate("U", 1);
  Instance inst = RandomInstance(vocab, {r, t, u}, 6, 10, 2600 + seed);
  TreeDecomposition td = Binarize(DecomposeMinFill(inst));
  ASSERT_TRUE(td.Validate(inst)) << "seed " << seed;
  TreeCode code = EncodeInstance(inst, td, td.width() + (seed % 3));
  ASSERT_TRUE(code.Validate()) << "seed " << seed;
  Instance decoded = code.Decode(vocab);
  EXPECT_EQ(decoded.num_facts(), inst.num_facts()) << "seed " << seed;
  EXPECT_TRUE(HomEquivalent(decoded, inst)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodeRoundTrip, ::testing::Range(0u, 15u));

// ---------- Thm 5 agrees with exact canonical tests ----------------------

struct MonDetCase {
  const char* query;
  const char* view;
};

class Thm5VsCanonical : public ::testing::TestWithParam<MonDetCase> {};

TEST_P(Thm5VsCanonical, VerdictsAgree) {
  const MonDetCase& c = GetParam();
  auto vocab = MakeVocabulary();
  std::string error;
  auto q = ParseCq(c.query, vocab, &error);
  ASSERT_TRUE(q) << error;
  ViewSet views(vocab);
  views.AddCqView("V", *ParseCq(c.view, vocab, &error));
  Thm5Result thm5 = CheckCqOverDatalogViews(*q, views);
  MonDetResult canonical =
      CheckMonotonicDeterminacy(CqAsDatalog(*q, "G"), views);
  ASSERT_NE(canonical.verdict, Verdict::kUnknownBounded) << c.query;
  EXPECT_EQ(thm5.determined, canonical.verdict == Verdict::kDetermined)
      << c.query << " over " << c.view;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Thm5VsCanonical,
    ::testing::Values(
        MonDetCase{"Q() :- R(x,y), R(y,z).", "V(x,z) :- R(x,y), R(y,z)."},
        MonDetCase{"Q() :- R(x,y).", "V(x,z) :- R(x,y), R(y,z)."},
        MonDetCase{"Q() :- R(x,y), R(y,x).", "V(x,y) :- R(x,y)."},
        MonDetCase{"Q() :- R(x,x).", "V(x) :- R(x,x)."},
        MonDetCase{"Q() :- R(x,y), R(x,z).", "V(x) :- R(x,y)."},
        MonDetCase{"Q() :- R(x,y), R(y,z), R(z,w).",
                   "V(x,w) :- R(x,y), R(y,z), R(z,w)."}));

// ---------- Inverse-rules rewriting is exact over lossless views ---------

class LosslessViewFamilies : public ::testing::TestWithParam<unsigned> {};

TEST_P(LosslessViewFamilies, RewritingMatchesQuery) {
  unsigned seed = GetParam();
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    E(x) :- S(x).
    E(y) :- R(x,y), O(x).
    O(y) :- R(x,y), E(x).
    Goal() :- O(x), U(x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddAtomicView("VS", *vocab->FindPredicate("S"));
  views.AddAtomicView("VU", *vocab->FindPredicate("U"));
  DatalogQuery rewriting = InverseRulesRewriting(*q, views);
  std::vector<PredId> preds{*vocab->FindPredicate("R"),
                            *vocab->FindPredicate("S"),
                            *vocab->FindPredicate("U")};
  Instance inst = RandomInstance(vocab, preds, 4, 8, 2700 + seed);
  EXPECT_EQ(DatalogHoldsOn(*q, inst),
            DatalogHoldsOn(rewriting, views.Image(inst)))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LosslessViewFamilies,
                         ::testing::Range(0u, 15u));

}  // namespace
}  // namespace mondet
