#include <gtest/gtest.h>

#include "base/homomorphism.h"
#include "datalog/approximation.h"
#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

constexpr char kReach[] = R"(
  P(x) :- U(x).
  P(x) :- R(x,y), P(y).
  Goal(x) :- P(x).
)";

TEST(Parser, RejectsUnsafeRules) {
  auto vocab = MakeVocabulary();
  ParseResult result = ParseProgram("Goal(x) :- R(y,z).", vocab);
  EXPECT_FALSE(result.ok());
}

TEST(Parser, RejectsArityMismatch) {
  auto vocab = MakeVocabulary();
  ParseResult result = ParseProgram("Goal(x) :- R(x,y), R(x).", vocab);
  EXPECT_FALSE(result.ok());
}

TEST(Parser, ParsesComments) {
  auto vocab = MakeVocabulary();
  ParseResult result =
      ParseProgram("# header\nGoal(x) :- R(x,y). # trailing\n", vocab);
  EXPECT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.program->rules().size(), 1u);
}

TEST(Parser, ParsesGroundInstance) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto inst = ParseInstance("R(a,b). R(b,c). U(c). # done", vocab, &diags);
  ASSERT_TRUE(inst.has_value()) << FormatDiagnostics(diags);
  EXPECT_EQ(inst->num_facts(), 3u);
  EXPECT_EQ(inst->num_elements(), 3u);
  PredId r = *vocab->FindPredicate("R");
  EXPECT_EQ(inst->NumRows(r), 2u);
}

TEST(Parser, InstanceSharesElementsByName) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto inst = ParseInstance("R(a,a). U(a).", vocab, &diags);
  ASSERT_TRUE(inst.has_value()) << FormatDiagnostics(diags);
  EXPECT_EQ(inst->num_elements(), 1u);
}

TEST(Parser, InstanceRejectsArityMismatch) {
  auto vocab = MakeVocabulary();
  std::vector<Diagnostic> diags;
  auto inst = ParseInstance("R(a,b). R(a).", vocab, &diags);
  EXPECT_FALSE(inst.has_value());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "arity");
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(Parser, InstanceDiagnosticsCarryPositions) {
  auto vocab = MakeVocabulary();
  std::vector<Diagnostic> diags;
  auto inst = ParseInstance("R(a,b).\nR(c).", vocab, &diags);
  EXPECT_FALSE(inst.has_value());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "arity");
  EXPECT_EQ(diags[0].loc.line, 2);

  std::vector<Diagnostic> syntax;
  auto bad = ParseInstance("R(a,b).\nR(b c).", vocab, &syntax);
  EXPECT_FALSE(bad.has_value());
  ASSERT_EQ(syntax.size(), 1u);
  EXPECT_EQ(syntax[0].check, "parse");
  EXPECT_EQ(syntax[0].loc.line, 2);
  EXPECT_GT(syntax[0].loc.col, 1);
}

TEST(Parser, QueryGoalResolutionFailureCarriesPosition) {
  auto vocab = MakeVocabulary();
  std::vector<Diagnostic> diags;
  // "R" resolves to a predicate, but an extensional one: the diagnostic
  // points at its first body occurrence (rule 1, atom 0, line 3).
  auto q = ParseQuery("P(x) :- U(x).\n\nP(y) :- R(x,y), P(x).", "R", vocab,
                      &diags);
  EXPECT_FALSE(q.has_value());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "goal");
  EXPECT_EQ(diags[0].loc.rule, 1);
  ASSERT_EQ(diags[0].loc.atoms.size(), 1u);
  EXPECT_EQ(diags[0].loc.atoms[0], 0);
  EXPECT_EQ(diags[0].loc.line, 3);

  // A goal name that never occurs anywhere still fails with the "goal"
  // check, just without a position.
  std::vector<Diagnostic> unknown;
  auto q2 = ParseQuery("P(x) :- U(x).", "Nope", vocab, &unknown);
  EXPECT_FALSE(q2.has_value());
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].check, "goal");
  EXPECT_EQ(unknown[0].loc.line, 0);

  // Parse-level failures flow through ParseQuery's diagnostics too.
  std::vector<Diagnostic> parse_fail;
  auto q3 = ParseQuery("P(x) :- U(x)", "P", vocab, &parse_fail);
  EXPECT_FALSE(q3.has_value());
  ASSERT_FALSE(parse_fail.empty());
  EXPECT_TRUE(HasErrors(parse_fail));
}

TEST(Parser, InstanceRoundTripsThroughEvaluation) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(kReach, "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  auto inst = ParseInstance("R(a,b). R(b,c). U(c).", vocab, &diags);
  ASSERT_TRUE(inst) << FormatDiagnostics(diags);
  EXPECT_TRUE(DatalogHoldsOn(*q, *inst));
  auto no_u = ParseInstance("R(a,b). R(b,c).", vocab, &diags);
  EXPECT_FALSE(DatalogHoldsOn(*q, *no_u));
}

TEST(Eval, TransitiveReachability) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  Instance inst = MakePath(vocab, r, 4);  // 0->1->2->3->4
  inst.AddFact(u, {4});
  auto out = EvaluateDatalog(q, inst);
  EXPECT_EQ(out.size(), 5u);  // everyone reaches 4
  EXPECT_TRUE(DatalogHoldsOn(q, inst, {0}));
}

TEST(Eval, NoDerivationWithoutBase) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  PredId r = *vocab->FindPredicate("R");
  Instance inst = MakePath(vocab, r, 4);
  EXPECT_FALSE(DatalogHoldsOn(q, inst));
}

TEST(Eval, MutualRecursion) {
  auto vocab = MakeVocabulary();
  // Even/odd distance from a source marked S, over edges E.
  DatalogQuery q = MustParseQuery(R"(
    Even(x) :- S(x).
    Odd(y) :- E(x,y), Even(x).
    Even(y) :- E(x,y), Odd(x).
    Goal(x) :- Even(x).
  )",
                                  "Goal", vocab);
  PredId e = *vocab->FindPredicate("E");
  PredId s = *vocab->FindPredicate("S");
  Instance inst = MakePath(vocab, e, 4);
  inst.AddFact(s, {0});
  auto out = EvaluateDatalog(q, inst);
  EXPECT_TRUE(out.count({0}));
  EXPECT_FALSE(out.count({1}));
  EXPECT_TRUE(out.count({2}));
  EXPECT_TRUE(out.count({4}));
}

TEST(Eval, CycleSaturates) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    T(x,y) :- R(x,y).
    T(x,z) :- T(x,y), R(y,z).
    Goal(x,y) :- T(x,y).
  )",
                                  "Goal", vocab);
  PredId r = *vocab->FindPredicate("R");
  Instance cycle = MakeCycle(vocab, r, 3);
  auto out = EvaluateDatalog(q, cycle);
  EXPECT_EQ(out.size(), 9u);  // full transitive closure
}

TEST(Eval, ZeroAryGoalAndEmptyBody) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery("Goal.\n", "Goal", vocab);
  Instance empty(vocab);
  EXPECT_TRUE(DatalogHoldsOn(q, empty));
}

TEST(Eval, InputIdbFactsRespected) {
  // FPEval over an instance that already contains IDB facts (Prop. 4 use).
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  PredId r = *vocab->FindPredicate("R");
  PredId p = *vocab->FindPredicate("P");
  Instance inst = MakePath(vocab, r, 2);
  inst.AddFact(p, {2});
  Instance fixpoint = FpEval(q.program, inst);
  EXPECT_TRUE(fixpoint.HasFact(p, {0}));
}

TEST(Fragment, MonadicDetection) {
  auto vocab = MakeVocabulary();
  DatalogQuery mdl = MustParseQuery(kReach, "Goal", vocab);
  EXPECT_TRUE(IsMonadic(mdl.program));
  auto vocab2 = MakeVocabulary();
  DatalogQuery binary = MustParseQuery(R"(
    T(x,y) :- R(x,y).
    Goal() :- T(x,y).
  )",
                                       "Goal", vocab2);
  EXPECT_FALSE(IsMonadic(binary.program));
}

TEST(Fragment, FrontierGuardedDetection) {
  auto vocab = MakeVocabulary();
  // Head variables x,y co-occur in the extensional atom R(x,y): guarded.
  DatalogQuery fg = MustParseQuery(R"(
    T(x,y) :- R(x,y).
    T(x,y) :- R(x,y), T(y,z).
    Goal() :- T(x,y).
  )",
                                   "Goal", vocab);
  EXPECT_TRUE(IsFrontierGuarded(fg.program));
  auto vocab2 = MakeVocabulary();
  // Transitive closure is NOT frontier-guarded: head vars x,z never
  // co-occur in an extensional atom of the recursive rule.
  DatalogQuery tc = MustParseQuery(R"(
    T(x,y) :- R(x,y).
    T(x,z) :- T(x,y), R(y,z).
    Goal() :- T(x,y).
  )",
                                   "Goal", vocab2);
  EXPECT_FALSE(IsFrontierGuarded(tc.program));
  // Monadic programs count as frontier-guarded by convention.
  auto vocab3 = MakeVocabulary();
  DatalogQuery mdl = MustParseQuery("P(x) :- P2(x).\nP2(x) :- U(x).\nGoal(x) :- P(x).", "Goal", vocab3);
  EXPECT_TRUE(IsFrontierGuarded(mdl.program));
}

TEST(Fragment, NonRecursiveAndUnfolding) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- R(x,y), S(y).
    P(x) :- S(x).
    Goal() :- P(x), S(x).
  )",
                                  "Goal", vocab);
  EXPECT_TRUE(IsNonRecursive(q.program));
  UCQ ucq = UnfoldToUcq(q);
  EXPECT_EQ(ucq.disjuncts().size(), 2u);
  // Recursive program detected.
  auto vocab2 = MakeVocabulary();
  DatalogQuery rec = MustParseQuery(kReach, "Goal", vocab2);
  EXPECT_FALSE(IsNonRecursive(rec.program));
}

TEST(Approximation, EnumeratesReachExpansions) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  std::vector<Expansion> expansions;
  bool exhaustive = EnumerateExpansions(q, 4, 1000, [&](const Expansion& e) {
    expansions.push_back(e);
    return true;
  });
  EXPECT_TRUE(exhaustive);
  // Depth 4 gives goal->P chains of length 0..2: U(x); R+U; R+R+U.
  ASSERT_EQ(expansions.size(), 3u);
  // Each expansion satisfies the query on its own canonical database.
  for (const Expansion& e : expansions) {
    EXPECT_TRUE(DatalogHoldsOn(q, e.inst));
    EXPECT_EQ(e.frontier.size(), 1u);
  }
}

TEST(Approximation, ExpansionsMapIntoSatisfyingInstances) {
  // Prop. 1: I |= Q iff some approximation maps into I.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  Instance inst = MakePath(vocab, r, 3);
  inst.AddFact(u, {3});
  bool found = false;
  EnumerateExpansions(q, 6, 1000, [&](const Expansion& e) {
    HomSearch search(e.inst, inst);
    if (search.Exists({{e.frontier[0], 0}})) found = true;
    return !found;
  });
  EXPECT_TRUE(found);
}

TEST(Approximation, RepeatedHeadVarsUnify) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x,x) :- S(x).
    Goal() :- R(a,b), P(a,b).
  )",
                                  "Goal", vocab);
  std::vector<Expansion> expansions;
  EnumerateExpansions(q, 3, 10, [&](const Expansion& e) {
    expansions.push_back(e);
    return true;
  });
  ASSERT_EQ(expansions.size(), 1u);
  // a and b were unified: R(a,a), S(a) over a single element.
  EXPECT_EQ(expansions[0].inst.num_elements(), 1u);
  EXPECT_EQ(expansions[0].inst.num_facts(), 2u);
}

TEST(Approximation, DepthLimitsRespected) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(kReach, "Goal", vocab);
  size_t count = 0;
  bool exhaustive =
      EnumerateExpansions(q, 20, 5, [&](const Expansion&) {
        ++count;
        return true;
      });
  EXPECT_FALSE(exhaustive);  // cap of 5 hit before depth 20 exhausted
  EXPECT_EQ(count, 5u);
}

}  // namespace
}  // namespace mondet
