// The TM-driven hard-instance stream: Turing machines from the `.tm`
// corpus compile through the Wang-tiling reduction (the currency of
// Thm 6–8) into step-bounded semi-decision instances with extracted
// certificates. This suite pins
//
//   * corpus/builtin equality — tests/corpus/tm/<name>.tm is byte-equal
//     to the embedded builtin text the fuzz harness uses;
//   * parser round-trips — ParseTm(TmToText(tm)) preserves the machine;
//   * the acceptance bar of the reduction: every builtin machine
//     compiles through CompileTmRun and its extracted certificate
//     re-checks via CheckTiling (independent of the solver);
//   * the semi-decision boundary — a non-accepting run yields no tiling;
//   * agreement with reductions/thm9: the `eraser` builtin is exactly
//     Thm 9's EraserMachine.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "reductions/thm9.h"
#include "testing/tm.h"

#ifndef MONDET_CORPUS_DIR
#error "MONDET_CORPUS_DIR must point at tests/corpus"
#endif

namespace mondet {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TmCorpus, CorpusFilesMatchBuiltins) {
  const std::vector<std::string> names = testing::BuiltinTmNames();
  ASSERT_GE(names.size(), 3u);
  for (const std::string& name : names) {
    const std::string path =
        std::string(MONDET_CORPUS_DIR) + "/tm/" + name + ".tm";
    EXPECT_EQ(Slurp(path), testing::BuiltinTmText(name))
        << path << " drifted from the embedded builtin";
  }
}

TEST(TmCorpus, ParseRoundTripsEveryBuiltin) {
  for (const std::string& name : testing::BuiltinTmNames()) {
    TuringMachine tm = testing::BuiltinTm(name);
    std::string error;
    std::optional<TuringMachine> back =
        testing::ParseTm(testing::TmToText(tm), &error);
    ASSERT_TRUE(back.has_value()) << name << ": " << error;
    EXPECT_EQ(back->num_states, tm.num_states) << name;
    EXPECT_EQ(back->num_symbols, tm.num_symbols) << name;
    EXPECT_EQ(back->start, tm.start) << name;
    EXPECT_EQ(back->accept, tm.accept) << name;
    ASSERT_EQ(back->delta.size(), tm.delta.size()) << name;
    for (const auto& [key, act] : tm.delta) {
      auto it = back->delta.find(key);
      ASSERT_NE(it, back->delta.end()) << name;
      EXPECT_EQ(it->second.next_state, act.next_state) << name;
      EXPECT_EQ(it->second.write, act.write) << name;
      EXPECT_EQ(it->second.move, act.move) << name;
    }
  }
}

TEST(TmCorpus, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(testing::ParseTm("states 2\nsymbols 2\nstart 5\naccept 1\n",
                                &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      testing::ParseTm("states 2\nsymbols 2\nstart 0\naccept 1\n"
                       "0 1 -> 0 1 R\n0 1 -> 1 0 L\n",
                       &error)
          .has_value())
      << "duplicate transition must be rejected";
  EXPECT_FALSE(
      testing::ParseTm("states 2\nsymbols 2\nstart 0\naccept 1\n0 1 -> 0 1\n",
                       &error)
          .has_value())
      << "truncated transition must be rejected";
}

// The acceptance bar: every builtin machine compiles through the tiling
// reduction, and the certificate extracted from the trace re-checks
// against the constraints without the solver.
TEST(TmScenario, EveryBuiltinCompilesAndCertificateRechecks) {
  for (const std::string& name : testing::BuiltinTmNames()) {
    TuringMachine tm = testing::BuiltinTm(name);
    std::optional<testing::TmTiling> t =
        testing::CompileTmRun(tm, {1, 1}, 500);
    ASSERT_TRUE(t.has_value()) << name << " does not accept 11 in 500 steps";
    EXPECT_EQ(t->n, 4) << name;
    EXPECT_EQ(t->m, static_cast<int>(t->trace.size()) + 2) << name;
    ASSERT_EQ(t->cert.size(), static_cast<size_t>(t->n) * t->m) << name;
    ASSERT_EQ(t->tile_names.size(),
              static_cast<size_t>(t->tp.num_tiles))
        << name;
    std::string why;
    EXPECT_TRUE(testing::CheckTiling(t->tp, t->n, t->m, t->cert, &why))
        << name << ": " << why;
  }
}

// The solver and the certificate verify each other on a small grid, and
// truncated grids are refuted (the construction pins the run length).
TEST(TmScenario, SolverAgreesOnWipe) {
  TuringMachine tm = testing::BuiltinTm("wipe");
  std::optional<testing::TmTiling> t = testing::CompileTmRun(tm, {1}, 100);
  ASSERT_TRUE(t.has_value());
  std::optional<std::vector<int>> sol = t->tp.Solve(t->n, t->m);
  ASSERT_TRUE(sol.has_value());
  std::string why;
  EXPECT_TRUE(testing::CheckTiling(t->tp, t->n, t->m, *sol, &why)) << why;
  EXPECT_FALSE(t->tp.Solve(t->n, 2).has_value());
  EXPECT_FALSE(t->tp.Solve(t->n, t->m - 1).has_value());
}

// Semi-decision boundary: a run that does not accept within the step
// budget produces no tiling (and so no verdict).
TEST(TmScenario, NoAcceptNoTiling) {
  TuringMachine tm = testing::BuiltinTm("eraser");
  // The eraser needs ~n^2 steps; 3 is not enough for input 11.
  EXPECT_FALSE(testing::CompileTmRun(tm, {1, 1}, 3).has_value());
}

// The `eraser` builtin is Thm 9's theta(n^2) machine, transition for
// transition — the corpus file and the paper gadget cannot drift apart.
TEST(TmScenario, EraserMatchesThm9Machine) {
  TuringMachine corpus = testing::BuiltinTm("eraser");
  TuringMachine paper = EraserMachine();
  EXPECT_EQ(corpus.num_states, paper.num_states);
  EXPECT_EQ(corpus.num_symbols, paper.num_symbols);
  EXPECT_EQ(corpus.start, paper.start);
  EXPECT_EQ(corpus.accept, paper.accept);
  ASSERT_EQ(corpus.delta.size(), paper.delta.size());
  for (const auto& [key, act] : paper.delta) {
    auto it = corpus.delta.find(key);
    ASSERT_NE(it, corpus.delta.end());
    EXPECT_EQ(it->second.next_state, act.next_state);
    EXPECT_EQ(it->second.write, act.write);
    EXPECT_EQ(it->second.move, act.move);
  }
}

}  // namespace
}  // namespace mondet
