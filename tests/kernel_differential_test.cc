// Differential test for the compiled join kernels: on randomized Datalog
// programs and instances, the specialized kernel data plane and its
// generic-interpreter escape hatch (EvalOptions::compiled_kernels) must
// be observationally identical — byte-identical fact sequences at 1 and
// 4 threads, equal derivation counters, under both the stats planner and
// the static compile-time orders — with the naive full-rescan reference
// anchoring the fact set.
//
// The generator and checker live in the shared randomized-testing
// library (testing/oracle.h, oracle `kernel-differential`) so the
// `mondet-fuzz` CLI can drive the same property over open-ended seed
// ranges and shrink any failure to a minimal repro. This suite pins the
// historical seed range; a failure message carries the full generated
// case, so it can be saved as a `.repro` and replayed with
// `mondet-fuzz --replay`.

#include <gtest/gtest.h>

#include "testing/oracle.h"

namespace mondet {
namespace {

class KernelDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(KernelDifferential, KernelsMatchInterpreterAndReference) {
  const testing::Oracle* oracle = testing::FindOracle("kernel-differential");
  ASSERT_NE(oracle, nullptr);
  testing::OracleOutcome out = oracle->Check(oracle->Generate(GetParam()));
  EXPECT_TRUE(out.ok) << out.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferential, ::testing::Range(0u, 160u));

}  // namespace
}  // namespace mondet
