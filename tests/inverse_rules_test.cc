#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "tests/test_util.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

/// Example 1 of the paper: ternary T, binary B, unary U1/U2; query Q and
/// views V0..V2 with the Datalog rewriting obtained via V0.
struct Example1 {
  VocabularyPtr vocab = MakeVocabulary();
  DatalogQuery query;
  ViewSet views;

  Example1()
      : query(MustParse()),
        views(vocab) {
    std::string error;
    CQ v0 = *ParseCq("V0(x,w) :- T(x,y,z), B(z,w), B(y,w).", vocab, &error);
    CQ v1 = *ParseCq("V1(x) :- U1(x).", vocab, &error);
    CQ v2 = *ParseCq("V2(x) :- U2(x).", vocab, &error);
    views.AddCqView("V0", v0);
    views.AddCqView("V1", v1);
    views.AddCqView("V2", v2);
  }

  DatalogQuery MustParse() {
    std::string error;
    std::vector<Diagnostic> diags;
    auto q = ParseQuery(R"(
      Q() :- U1(x), W1(x).
      W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w).
      W1(x) :- U2(x).
    )",
                        "Q", vocab, &diags);
    EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
    return *q;
  }

  /// A chain of n "diamond" steps: x0 -T/B/B-> x1 -...-> xn with U1(x0)
  /// and U2(xn). Q holds on it.
  Instance Chain(int n) {
    Instance inst(vocab);
    PredId t = *vocab->FindPredicate("T");
    PredId b = *vocab->FindPredicate("B");
    PredId u1 = *vocab->FindPredicate("U1");
    PredId u2 = *vocab->FindPredicate("U2");
    ElemId prev = inst.AddElement("x0");
    inst.AddFact(u1, {prev});
    for (int i = 1; i <= n; ++i) {
      ElemId y = inst.AddElement();
      ElemId z = inst.AddElement();
      ElemId next = inst.AddElement("x" + std::to_string(i));
      inst.AddFact(t, {prev, y, z});
      inst.AddFact(b, {z, next});
      inst.AddFact(b, {y, next});
      prev = next;
    }
    inst.AddFact(u2, {prev});
    return inst;
  }
};

TEST(InverseRules, Example1RewritingAgreesOnChains) {
  Example1 ex;
  DatalogQuery rewriting = InverseRulesRewriting(ex.query, ex.views);
  for (int n = 0; n <= 4; ++n) {
    Instance chain = ex.Chain(n);
    Instance image = ex.views.Image(chain);
    EXPECT_TRUE(DatalogHoldsOn(ex.query, chain)) << n;
    EXPECT_TRUE(DatalogHoldsOn(rewriting, image)) << n;
  }
}

TEST(InverseRules, Example1RewritingRejectsBrokenChains) {
  Example1 ex;
  DatalogQuery rewriting = InverseRulesRewriting(ex.query, ex.views);
  // Remove U2 marker: query false, rewriting false on the image.
  Instance chain = ex.Chain(3);
  Instance broken(ex.vocab);
  broken.EnsureElements(chain.num_elements());
  PredId u2 = *ex.vocab->FindPredicate("U2");
  for (const Fact& f : chain.AllFacts()) {
    if (f.pred != u2) broken.AddFact(f);
  }
  EXPECT_FALSE(DatalogHoldsOn(ex.query, broken));
  EXPECT_FALSE(DatalogHoldsOn(rewriting, ex.views.Image(broken)));
}

TEST(InverseRules, Example1RandomAgreement) {
  Example1 ex;
  DatalogQuery rewriting = InverseRulesRewriting(ex.query, ex.views);
  PredId t = *ex.vocab->FindPredicate("T");
  PredId b = *ex.vocab->FindPredicate("B");
  PredId u1 = *ex.vocab->FindPredicate("U1");
  PredId u2 = *ex.vocab->FindPredicate("U2");
  int positives = 0;
  for (unsigned seed = 0; seed < 40; ++seed) {
    Instance inst =
        RandomInstance(ex.vocab, {t, b, u1, u2}, 4, 10, 500 + seed);
    bool q = DatalogHoldsOn(ex.query, inst);
    bool r = DatalogHoldsOn(rewriting, ex.views.Image(inst));
    EXPECT_EQ(q, r) << "seed " << seed << "\n" << inst.DebugString();
    positives += q ? 1 : 0;
  }
  EXPECT_GT(positives, 0);  // the sweep exercises both outcomes
}

TEST(InverseRules, CertainAnswersAreSound) {
  // Certain answers on V(I) never exceed Q(I).
  Example1 ex;
  Instance chain = ex.Chain(2);
  Instance image = ex.views.Image(chain);
  auto certain = CertainAnswers(ex.query, ex.views, image);
  EXPECT_EQ(certain.size(), 1u);  // Boolean query: certainly true
}

TEST(InverseRules, CertainAnswersOnAmbiguousImage) {
  // An image fact that does not pin down the base facts: certain answers
  // must be empty when some preimage falsifies the query.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery("Q() :- R(x,y), R(y,x).", "Q", vocab);
  ViewSet views(vocab);
  std::string error;
  views.AddCqView("V", *ParseCq("V(x) :- R(x,y).", vocab, &error));
  Instance j(vocab);
  ElemId a = j.AddElement();
  j.AddFact(views.views()[0].pred, {a});
  auto certain = CertainAnswers(q, views, j);
  EXPECT_TRUE(certain.empty());
}

TEST(InverseRules, FrontierGuardedOutput) {
  // With the guard option, a frontier-guarded query over CQ views gets a
  // frontier-guarded rewriting (paper appendix).
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    Conn(x,y) :- S(x,y,z).
    Conn(x,y) :- S(x,y,z), Conn(x,z), Conn(z,y).
    Goal() :- Conn(x,x).
  )",
                                  "Goal", vocab);
  EXPECT_TRUE(IsFrontierGuarded(q.program));
  ViewSet views(vocab);
  std::string error;
  views.AddCqView("V",
                  *ParseCq("V(x,y,z) :- S(x,y,u), S(u,y,z).", vocab, &error));
  InverseRulesOptions options;
  options.frontier_guard = true;
  DatalogQuery rewriting = InverseRulesRewriting(q, views, options);
  EXPECT_TRUE(IsFrontierGuarded(rewriting.program))
      << rewriting.program.DebugString();
}

TEST(InverseRules, RecursiveViewViaSaturationAgreesOnAtomicViews) {
  // With atomic views over every EDB, the rewriting is a faithful copy:
  // certain answers equal real answers for every instance.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                                  "Goal", vocab);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddAtomicView("VU", *vocab->FindPredicate("U"));
  DatalogQuery rewriting = InverseRulesRewriting(q, views);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, {r, u}, 4, 7, 900 + seed);
    EXPECT_EQ(DatalogHoldsOn(q, inst),
              DatalogHoldsOn(rewriting, views.Image(inst)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace mondet
