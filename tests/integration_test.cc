#include <gtest/gtest.h>

#include "automata/ops.h"
#include "base/homomorphism.h"
#include "core/backward.h"
#include "core/forward.h"
#include "core/mondet_check.h"
#include "core/rewriting.h"
#include "core/separator.h"
#include "datalog/eval.h"
#include "datalog/normalize.h"
#include "datalog/parser.h"
#include "games/pebble.h"
#include "reductions/thm6.h"
#include "reductions/thm7.h"
#include "tests/test_util.h"
#include "tree/code.h"
#include "tree/decompose.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

/// Paper Example 1: query Q over {T,B,U1,U2}, views V0..V2, with the
/// Datalog rewriting W1(x) ← V0(x,w),W1(w) etc.
TEST(Integration, Example1EndToEnd) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto query = ParseQuery(R"(
    Q() :- U1(x), W1(x).
    W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w).
    W1(x) :- U2(x).
  )",
                          "Q", vocab, &diags);
  ASSERT_TRUE(query) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddCqView("V0",
                  *ParseCq("V0(x,w) :- T(x,y,z), B(z,w), B(y,w).", vocab,
                           &error));
  views.AddCqView("V1", *ParseCq("V1(x) :- U1(x).", vocab, &error));
  views.AddCqView("V2", *ParseCq("V2(x) :- U2(x).", vocab, &error));

  // 1. Monotonic determinacy is not refuted by canonical tests.
  MonDetResult mondet = CheckMonotonicDeterminacy(*query, views);
  EXPECT_NE(mondet.verdict, Verdict::kNotDetermined);

  // 2. The paper's hand-written rewriting is reproduced semantically by
  //    the inverse-rules rewriting.
  auto hand = ParseQuery(R"(
    QR() :- V1(x), W1R(x).
    W1R(x) :- V0(x,w), W1R(w).
    W1R(x) :- V2(x).
  )",
                         "QR", vocab, &diags);
  ASSERT_TRUE(hand) << FormatDiagnostics(diags);
  DatalogQuery machine = InverseRulesRewriting(*query, views);
  PredId t = *vocab->FindPredicate("T");
  PredId b = *vocab->FindPredicate("B");
  PredId u1 = *vocab->FindPredicate("U1");
  PredId u2 = *vocab->FindPredicate("U2");
  for (unsigned seed = 0; seed < 30; ++seed) {
    Instance inst = RandomInstance(vocab, {t, b, u1, u2}, 4, 9, 820 + seed);
    Instance image = views.Image(inst);
    bool truth = DatalogHoldsOn(*query, inst);
    EXPECT_EQ(truth, DatalogHoldsOn(*hand, image)) << "seed " << seed;
    EXPECT_EQ(truth, DatalogHoldsOn(machine, image)) << "seed " << seed;
  }
}

TEST(Integration, Example1SecondViewFamily) {
  // The second half of Example 1: V3/V4 determine Q with the CQ
  // rewriting ∃yz V3(y,z) ∧ V4(y,z).
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto query = ParseQuery(R"(
    Q() :- U1(x), W1(x).
    W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w).
    W1(x) :- U2(x).
  )",
                          "Q", vocab, &diags);
  ASSERT_TRUE(query) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddCqView(
      "V3", *ParseCq("V3(y,z) :- U1(x), T(x,y,z).", vocab, &error));
  auto v4 = ParseQuery(R"(
    GoalV4(y,z) :- T(x,y,z), B(z,w), B(y,w), T(w,q,r), GoalV4(q,r).
    GoalV4(y,z) :- B(y,w), B(z,w), U2(w).
  )",
                       "GoalV4", vocab, &diags);
  ASSERT_TRUE(v4) << FormatDiagnostics(diags);
  PredId v4_pred = views.AddView("V4", *v4);
  PredId v3_pred = views.views()[0].pred;

  // The CQ rewriting ∃yz V3(y,z) ∧ V4(y,z) agrees with Q... note Q also
  // holds when U1 and U2 meet at the same point (zero diamonds), which
  // the rewriting detects through V4's base rule only after one diamond;
  // sweep instances built from diamond chains.
  PredId t = *vocab->FindPredicate("T");
  PredId b = *vocab->FindPredicate("B");
  PredId u1 = *vocab->FindPredicate("U1");
  PredId u2 = *vocab->FindPredicate("U2");
  CQ rewriting(vocab);
  VarId y = rewriting.AddVar("y");
  VarId z = rewriting.AddVar("z");
  rewriting.AddAtom(v3_pred, {y, z});
  rewriting.AddAtom(v4_pred, {y, z});
  rewriting.SetFreeVars({});

  // Diamond chain with U1 at start, U2 at end: Q true, rewriting true.
  for (int n = 1; n <= 3; ++n) {
    Instance inst(vocab);
    ElemId first = inst.AddElement();
    inst.AddFact(u1, {first});
    ElemId prev = first;
    for (int i = 0; i < n; ++i) {
      ElemId yy = inst.AddElement();
      ElemId zz = inst.AddElement();
      ElemId next = inst.AddElement();
      inst.AddFact(t, {prev, yy, zz});
      inst.AddFact(b, {zz, next});
      inst.AddFact(b, {yy, next});
      prev = next;
    }
    inst.AddFact(u2, {prev});
    EXPECT_TRUE(DatalogHoldsOn(*query, inst)) << n;
    EXPECT_TRUE(rewriting.HoldsOn(views.Image(inst))) << n;
    // Remove U2: both false.
    Instance broken(vocab);
    broken.EnsureElements(inst.num_elements());
    for (const Fact& f : inst.AllFacts()) {
      if (f.pred != u2) broken.AddFact(f);
    }
    EXPECT_FALSE(DatalogHoldsOn(*query, broken)) << n;
    EXPECT_FALSE(rewriting.HoldsOn(views.Image(broken))) << n;
  }
}

TEST(Integration, NormalizedQueryKeepsMonDetVerdicts) {
  // Normalization (Prop. 2) must not change determinacy verdicts.
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x), M(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddCqView("VU", *ParseCq("VU(x) :- U(x).", vocab, &error));
  DatalogQuery normalized = NormalizeMdl(*q);
  MonDetResult original = CheckMonotonicDeterminacy(*q, views);
  MonDetResult normed = CheckMonotonicDeterminacy(normalized, views);
  EXPECT_EQ(original.verdict == Verdict::kNotDetermined,
            normed.verdict == Verdict::kNotDetermined);
}

TEST(Integration, BackwardOfForwardEquivalentToQuery) {
  // Forward then backward over the identity "views" reproduces the query
  // on arbitrary instances (Prop. 3 + Prop. 7 in the degenerate case).
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y), M(y).
    Goal() :- P(x), S(x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  ForwardResult fwd = ApproximationAutomaton(*q);
  std::vector<PredId> schema{
      *vocab->FindPredicate("R"), *vocab->FindPredicate("U"),
      *vocab->FindPredicate("M"), *vocab->FindPredicate("S")};
  DatalogQuery back = BackwardMapping(fwd.automaton, schema, vocab);
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, schema, 4, 9, 920 + seed);
    EXPECT_EQ(DatalogHoldsOn(*q, inst), DatalogHoldsOn(back, inst))
        << "seed " << seed;
  }
}

TEST(Integration, Thm7GadgetSeparatorsAgree) {
  Thm7Gadget gadget = BuildThm7();
  for (int n = 1; n <= 3; ++n) {
    Instance chain = gadget.DiamondChain(n);
    Instance image = gadget.views.Image(chain);
    EXPECT_TRUE(ChaseSeparatorAccepts(gadget.query, gadget.views, image, 2))
        << n;
    Instance unmarked = gadget.DiamondChain(n, false);
    Instance unmarked_image = gadget.views.Image(unmarked);
    EXPECT_FALSE(ChaseSeparatorAccepts(gadget.query, gadget.views,
                                       unmarked_image, 2))
        << n;
  }
}

TEST(Integration, ApproximationCodesRoundTripThroughDecoder) {
  // Forward-mapping witness codes decode to instances on which the query
  // holds, for several query shapes.
  std::vector<std::pair<std::string, std::string>> cases = {
      {"P(x) :- U(x).\nP(x) :- R(x,y), P(y).\nGoal() :- P(x).", "Goal"},
      {"T(x,y) :- R(x,y).\nT(x,y) :- R(x,y), T(y,z).\nGoal() :- T(x,y).",
       "Goal"},
      {"A(x) :- U(x).\nB(x) :- M(x).\nGoal() :- A(x), B(x), S(x,y).",
       "Goal"},
  };
  for (const auto& [text, goal] : cases) {
    auto vocab = MakeVocabulary();
    std::string error;
    std::vector<Diagnostic> diags;
    auto q = ParseQuery(text, goal, vocab, &diags);
    ASSERT_TRUE(q) << FormatDiagnostics(diags);
    ForwardResult fwd = ApproximationAutomaton(*q);
    auto witness = EmptinessWitness(fwd.automaton);
    ASSERT_TRUE(witness.has_value()) << text;
    EXPECT_TRUE(DatalogHoldsOn(*q, witness->Decode(vocab))) << text;
  }
}

}  // namespace
}  // namespace mondet
