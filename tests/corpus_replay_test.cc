// Corpus replay: every `.repro` under tests/corpus/cases/ must load,
// name a registered oracle, pass its check, and survive a byte-exact
// serialize round-trip (the corpus format doubles as the failure-message
// format, so drift here silently breaks `mondet-fuzz --replay` of old
// artifacts). A generative arm additionally round-trips fresh cases from
// every oracle through ParseCaseText and re-checks them, so corpus
// coverage does not depend on which files happen to be curated.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/corpus.h"
#include "testing/oracle.h"

#ifndef MONDET_CORPUS_DIR
#error "MONDET_CORPUS_DIR must point at tests/corpus"
#endif

namespace mondet {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  const std::filesystem::path dir =
      std::filesystem::path(MONDET_CORPUS_DIR) / "cases";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CorpusReplay, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 6u)
      << "tests/corpus/cases/ lost its curated repros";
}

TEST(CorpusReplay, EveryCorpusCasePassesItsOracle) {
  for (const std::string& file : CorpusFiles()) {
    std::string error;
    std::optional<testing::FuzzCase> c = testing::LoadCaseFile(file, &error);
    ASSERT_TRUE(c.has_value()) << file << ": " << error;
    const testing::Oracle* oracle = testing::FindOracle(c->oracle);
    ASSERT_NE(oracle, nullptr) << file << ": unknown oracle " << c->oracle;
    testing::OracleOutcome out = oracle->Check(*c);
    EXPECT_TRUE(out.ok) << file << "\n" << out.message;
  }
}

TEST(CorpusReplay, SerializationRoundTripsByteExact) {
  for (const std::string& file : CorpusFiles()) {
    std::string error;
    std::optional<testing::FuzzCase> c = testing::LoadCaseFile(file, &error);
    ASSERT_TRUE(c.has_value()) << file << ": " << error;
    EXPECT_EQ(testing::SerializeCase(*c), Slurp(file))
        << file << " does not round-trip; regenerate it with mondet-fuzz "
        << "or align the serializer";
  }
}

// Fresh cases from every oracle round-trip through the corpus format
// with id-exact programs/instances: the reparsed case must both render
// identically and still pass its oracle.
TEST(CorpusReplay, GeneratedCasesRoundTripAndRecheck) {
  for (const testing::Oracle* oracle : testing::AllOracles()) {
    for (unsigned seed = 0; seed < 6; ++seed) {
      testing::FuzzCase c = oracle->Generate(seed);
      const std::string text = testing::SerializeCase(c);
      std::string error;
      std::optional<testing::FuzzCase> back =
          testing::ParseCaseText(text, &error);
      ASSERT_TRUE(back.has_value())
          << oracle->name() << " seed " << seed << ": " << error << "\n"
          << text;
      EXPECT_EQ(testing::SerializeCase(*back), text)
          << oracle->name() << " seed " << seed;
      testing::OracleOutcome out = oracle->Check(*back);
      EXPECT_TRUE(out.ok) << oracle->name() << " seed " << seed
                          << " fails after round-trip\n"
                          << out.message;
    }
  }
}

}  // namespace
}  // namespace mondet
