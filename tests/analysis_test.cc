#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/lint.h"
#include "core/mondet_check.h"
#include "datalog/fragment.h"
#include "datalog/normalize.h"
#include "datalog/parser.h"
#include "reductions/thm6.h"
#include "reductions/tiling.h"
#include "views/view_set.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

Program MustParse(const std::string& text, const VocabularyPtr& vocab) {
  ParseResult result = ParseProgram(text, vocab);
  EXPECT_TRUE(result.ok()) << result.error;
  return *result.program;
}

std::vector<Diagnostic> WithCheck(const std::vector<Diagnostic>& diags,
                                  const std::string& check) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.check == check) out.push_back(d);
  }
  return out;
}

// Monadic + frontier-guarded + recursive (the running example of Sec. 1).
constexpr char kReach[] = R"(
  P(x) :- U(x).
  P(x) :- R(x,y), P(y).
  Goal() :- P(x).
)";

// Linear recursion over a binary IDB with no EDB guard: outside MDL and
// FGDL — the canonical witness-producing input.
constexpr char kSameGen[] = R"(
  SG(x,y) :- Flat(x,y).
  SG(x,y) :- Up(x,u), SG(u,v), Down(v,y).
  Goal() :- SG(x,y), Src(x), Dst(y).
)";

// ---------------------------------------------------------------------------
// Diagnostic plumbing

TEST(Diagnostic, FormatIncludesPositionRuleAtomsVars) {
  SourceLoc loc;
  loc.rule = 2;
  loc.atoms = {SourceLoc::kHead, 1};
  loc.vars = {"x", "y"};
  loc.line = 3;
  loc.col = 5;
  Diagnostic d = MakeDiagnostic(Severity::kError, "safety", "boom", loc);
  EXPECT_EQ(FormatDiagnostic(d),
            "error[safety] line 3:5 rule 2 (head, atom 1) {x, y}: boom");
}

TEST(Diagnostic, JsonQuoteEscapes) {
  EXPECT_EQ(JsonQuote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

TEST(Diagnostic, SeverityCounting) {
  std::vector<Diagnostic> diags = {
      MakeDiagnostic(Severity::kNote, "a", "n"),
      MakeDiagnostic(Severity::kWarning, "b", "w"),
      MakeDiagnostic(Severity::kError, "c", "e"),
  };
  EXPECT_TRUE(HasErrors(diags));
  EXPECT_EQ(CountSeverity(diags, Severity::kWarning), 1u);
  diags.pop_back();
  EXPECT_FALSE(HasErrors(diags));
}

// ---------------------------------------------------------------------------
// Parser diagnostics (safety / arity with source positions)

TEST(ParserDiagnostics, UnsafeRuleProducesSafetyDiagnostic) {
  auto vocab = MakeVocabulary();
  ParseResult result = ParseProgram("Goal(x) :- R(y,z).", vocab);
  ASSERT_FALSE(result.ok());
  auto safety = WithCheck(result.diagnostics, "safety");
  ASSERT_EQ(safety.size(), 1u);
  EXPECT_EQ(safety[0].severity, Severity::kError);
  EXPECT_EQ(safety[0].loc.rule, 0);
  EXPECT_EQ(safety[0].loc.line, 1);
  ASSERT_EQ(safety[0].loc.vars.size(), 1u);
  EXPECT_EQ(safety[0].loc.vars[0], "x");
}

TEST(ParserDiagnostics, ArityMismatchProducesArityDiagnostic) {
  auto vocab = MakeVocabulary();
  ParseResult result = ParseProgram("Goal(x) :- R(x,y).\nBad(x) :- R(x).",
                                    vocab);
  ASSERT_FALSE(result.ok());
  auto arity = WithCheck(result.diagnostics, "arity");
  ASSERT_GE(arity.size(), 1u);
  EXPECT_EQ(arity[0].loc.line, 2);
}

TEST(ParserDiagnostics, RulesRecordSourcePositions) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(kReach, vocab);
  ASSERT_EQ(p.rules().size(), 3u);
  EXPECT_EQ(p.rules()[0].line, 2);
  EXPECT_EQ(p.rules()[1].line, 3);
  EXPECT_EQ(p.rules()[2].line, 4);
  EXPECT_GT(p.rules()[0].col, 0);
}

// ---------------------------------------------------------------------------
// Individual checks, positive and negative

TEST(Checks, ReachabilityFlagsUnusedPredicateAndRules) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(
      "Goal() :- P(x).\n"
      "P(x) :- U(x).\n"
      "Dead(x) :- W(x).\n",
      vocab);
  AnalysisOptions options;
  options.goal = vocab->FindPredicate("Goal");
  AnalysisResult result = AnalyzeProgram(p, options);
  auto unused = WithCheck(result.diagnostics, "unused-predicate");
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_NE(unused[0].message.find("Dead"), std::string::npos);
  auto rules = WithCheck(result.diagnostics, "unreachable-rule");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].loc.rule, 2);
}

TEST(Checks, ReachabilityCleanWhenEverythingReachable) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(kReach, vocab);
  AnalysisOptions options;
  options.goal = vocab->FindPredicate("Goal");
  AnalysisResult result = AnalyzeProgram(p, options);
  EXPECT_TRUE(WithCheck(result.diagnostics, "unused-predicate").empty());
  EXPECT_TRUE(WithCheck(result.diagnostics, "unreachable-rule").empty());
}

TEST(Checks, ReachabilityGoalNotIdbIsError) {
  auto vocab = MakeVocabulary();
  Program p = MustParse("Goal() :- P(x).\nP(x) :- U(x).", vocab);
  AnalysisOptions options;
  options.goal = vocab->FindPredicate("U");
  AnalysisResult result = AnalyzeProgram(p, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(WithCheck(result.diagnostics, "goal").size(), 1u);
}

TEST(Checks, SingletonVariableWarnsInMultiAtomBody) {
  auto vocab = MakeVocabulary();
  Program p = MustParse("Goal() :- R(x,y), U(x).", vocab);
  AnalysisResult result = AnalyzeProgram(p);
  auto singles = WithCheck(result.diagnostics, "singleton-variable");
  ASSERT_EQ(singles.size(), 1u);
  EXPECT_EQ(singles[0].severity, Severity::kWarning);
  ASSERT_EQ(singles[0].loc.vars.size(), 1u);
  EXPECT_EQ(singles[0].loc.vars[0], "y");
  EXPECT_EQ(singles[0].loc.atoms, std::vector<int>{0});
}

TEST(Checks, SingletonVariableExemptsProjectionsAndUnderscores) {
  auto vocab = MakeVocabulary();
  // Single-atom body: projecting away y is idiomatic, not a typo.
  Program p1 = MustParse("Goal() :- R(x,x).\nG2(x) :- R(x,y).", vocab);
  EXPECT_TRUE(
      WithCheck(AnalyzeProgram(p1).diagnostics, "singleton-variable").empty());
  // '_'-prefixed singleton in a join is deliberate.
  PredId r = vocab->AddPredicate("R", 2);
  PredId u = vocab->AddPredicate("U", 1);
  PredId goal = vocab->AddPredicate("Goal0", 0);
  Program p2(vocab);
  p2.AddRule(RuleBuilder(vocab)
                 .Head(goal, {})
                 .Atom(r, {"x", "_rest"})
                 .Atom(u, {"x"})
                 .Build());
  EXPECT_TRUE(
      WithCheck(AnalyzeProgram(p2).diagnostics, "singleton-variable").empty());
}

TEST(Checks, RecursionReportLinearVsNonLinear) {
  auto vocab = MakeVocabulary();
  Program reach = MustParse(kReach, vocab);
  RecursionReport r1 = AnalyzeRecursion(reach);
  EXPECT_TRUE(r1.recursive);
  EXPECT_TRUE(r1.linear);
  EXPECT_EQ(r1.num_strata, 2u);
  ASSERT_EQ(r1.cyclic_idbs.size(), 1u);
  EXPECT_EQ(vocab->name(r1.cyclic_idbs[0]), "P");

  auto vocab2 = MakeVocabulary();
  Program tc = MustParse(
      "T(x,y) :- E(x,y).\n"
      "T(x,z) :- T(x,y), T(y,z).\n"
      "Goal() :- T(x,y), U(x), U(y).\n",
      vocab2);
  RecursionReport r2 = AnalyzeRecursion(tc);
  EXPECT_TRUE(r2.recursive);
  EXPECT_FALSE(r2.linear);

  auto vocab3 = MakeVocabulary();
  Program flat = MustParse("Goal() :- A(x), R(x,y), B(y).", vocab3);
  RecursionReport r3 = AnalyzeRecursion(flat);
  EXPECT_FALSE(r3.recursive);
  EXPECT_TRUE(r3.linear);
  EXPECT_EQ(r3.num_strata, 1u);
}

TEST(Checks, PlanLintFlagsCrossProduct) {
  auto vocab = MakeVocabulary();
  Program p = MustParse("Goal() :- A(x), B(y).", vocab);
  AnalysisResult result = AnalyzeProgram(p);
  auto cross = WithCheck(result.diagnostics, "plan-cross-product");
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].severity, Severity::kWarning);
  EXPECT_EQ(cross[0].loc.rule, 0);

  auto vocab2 = MakeVocabulary();
  Program reach = MustParse(kReach, vocab2);
  EXPECT_TRUE(
      WithCheck(AnalyzeProgram(reach).diagnostics, "plan-cross-product")
          .empty());
}

// ---------------------------------------------------------------------------
// Dataflow checks (analysis/dataflow.h surfaced through the analyzer)

// Exercises all five dataflow checks (examples/programs/dead_rules.dl
// mirrors this text): Empty has no base case, Uses depends on it, rule 3
// is subsumed by rule 2, rule 4 duplicates a body atom, and Helper is
// only ever called with no bound argument under goal Query.
constexpr char kDeadRules[] = R"(
  Empty(x) :- Link(x,y), Empty(y).
  Uses(x) :- Empty(x).
  Path(x,y) :- Link(x,y).
  Path(x,y) :- Link(x,y), Link(y,_z).
  Dup(x) :- Link(x,y), Link(x,y).
  Query(x) :- Helper(y), Path(y,x).
  Helper(x) :- Link(x,x).
)";

TEST(DataflowChecks, FlagsEmptyPredicatesAndDeadRules) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(kDeadRules, vocab);
  AnalysisResult result = AnalyzeProgram(p);
  auto empty = WithCheck(result.diagnostics, "always-empty-predicate");
  ASSERT_EQ(empty.size(), 2u);
  EXPECT_NE(empty[0].message.find("Empty"), std::string::npos);
  EXPECT_NE(empty[1].message.find("Uses"), std::string::npos);
  EXPECT_EQ(empty[0].severity, Severity::kWarning);
  auto dead = WithCheck(result.diagnostics, "dead-rule");
  ASSERT_EQ(dead.size(), 2u);
  EXPECT_EQ(dead[0].loc.rule, 0);
  EXPECT_EQ(dead[0].loc.atoms, std::vector<int>{1});  // the Empty(y) atom
  EXPECT_EQ(dead[1].loc.rule, 1);
}

TEST(DataflowChecks, FlagsSubsumedRulesAndRedundantAtoms) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(kDeadRules, vocab);
  AnalysisResult result = AnalyzeProgram(p);
  auto subsumed = WithCheck(result.diagnostics, "subsumed-rule");
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(subsumed[0].loc.rule, 3);
  EXPECT_NE(subsumed[0].message.find("subsumed by rule 2"),
            std::string::npos);
  auto redundant = WithCheck(result.diagnostics, "redundant-body-atom");
  ASSERT_EQ(redundant.size(), 2u);  // both copies of the duplicated atom
  EXPECT_EQ(redundant[0].loc.rule, 4);
  EXPECT_EQ(redundant[1].loc.rule, 4);
}

TEST(DataflowChecks, UnboundAdornmentNeedsBindingGoal) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(kDeadRules, vocab);
  AnalysisOptions options;
  options.goal = vocab->FindPredicate("Query");
  AnalysisResult result = AnalyzeProgram(p, options);
  auto notes = WithCheck(result.diagnostics, "unbound-adornment");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].severity, Severity::kNote);
  EXPECT_EQ(notes[0].loc.rule, 5);
  EXPECT_EQ(notes[0].loc.atoms, std::vector<int>{0});
  EXPECT_NE(notes[0].message.find("Helper"), std::string::npos);
  // Without a goal there is no binding source; with a nullary goal the
  // all-free pattern is vacuous. Both stay silent.
  EXPECT_TRUE(
      WithCheck(AnalyzeProgram(p).diagnostics, "unbound-adornment").empty());
  auto vocab2 = MakeVocabulary();
  Program reach = MustParse(kReach, vocab2);
  AnalysisOptions opt2;
  opt2.goal = vocab2->FindPredicate("Goal");
  EXPECT_TRUE(WithCheck(AnalyzeProgram(reach, opt2).diagnostics,
                        "unbound-adornment")
                  .empty());
}

TEST(DataflowChecks, DataflowOptionTurnsAllFiveOff) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(kDeadRules, vocab);
  AnalysisOptions options;
  options.goal = vocab->FindPredicate("Query");
  options.dataflow = false;
  AnalysisResult result = AnalyzeProgram(p, options);
  for (const char* id :
       {"always-empty-predicate", "dead-rule", "subsumed-rule",
        "redundant-body-atom", "unbound-adornment"}) {
    EXPECT_TRUE(WithCheck(result.diagnostics, id).empty()) << id;
  }
}

TEST(Analyzer, DisableCheckRecordsDisabledIds) {
  auto vocab = MakeVocabulary();
  Program p = MustParse(kDeadRules, vocab);
  ProgramAnalyzer analyzer;
  EXPECT_TRUE(analyzer.DisableCheck("dead-rule"));
  EXPECT_TRUE(analyzer.DisableCheck("plan-lints"));
  EXPECT_FALSE(analyzer.DisableCheck("no-such-check"));
  AnalysisResult result = analyzer.Analyze(p);
  EXPECT_EQ(result.disabled_checks,
            (std::vector<std::string>{"dead-rule", "plan-lints"}));
  EXPECT_TRUE(WithCheck(result.diagnostics, "dead-rule").empty());
  // The other dataflow checks still ran.
  EXPECT_FALSE(
      WithCheck(result.diagnostics, "always-empty-predicate").empty());
  // A result from an analyzer with nothing disabled records nothing.
  EXPECT_TRUE(ProgramAnalyzer().Analyze(p).disabled_checks.empty());
}

// ---------------------------------------------------------------------------
// Fragment classification and witnesses

TEST(Fragments, ClassifiesReachAndSameGen) {
  auto vocab = MakeVocabulary();
  Program reach = MustParse(kReach, vocab);
  EXPECT_TRUE(InFragment(reach, Fragment::kMonadic));
  EXPECT_TRUE(InFragment(reach, Fragment::kFrontierGuarded));
  EXPECT_FALSE(InFragment(reach, Fragment::kNonRecursive));

  auto vocab2 = MakeVocabulary();
  Program sg = MustParse(kSameGen, vocab2);
  EXPECT_FALSE(InFragment(sg, Fragment::kMonadic));
  EXPECT_FALSE(InFragment(sg, Fragment::kFrontierGuarded));
  EXPECT_FALSE(InFragment(sg, Fragment::kNonRecursive));
}

TEST(Fragments, FrontierGuardWitnessNamesRuleAndAtoms) {
  auto vocab = MakeVocabulary();
  Program sg = MustParse(kSameGen, vocab);
  std::vector<Diagnostic> witnesses =
      FragmentViolations(sg, Fragment::kFrontierGuarded);
  ASSERT_EQ(witnesses.size(), 1u);
  const Diagnostic& w = witnesses[0];
  EXPECT_EQ(w.severity, Severity::kError);
  EXPECT_EQ(w.check, "fragment-frontier-guarded");
  EXPECT_EQ(w.loc.rule, 1);  // SG(x,y) :- Up(x,u), SG(u,v), Down(v,y).
  EXPECT_EQ(w.loc.atoms, (std::vector<int>{0, 2}));
  EXPECT_EQ(w.loc.vars, (std::vector<std::string>{"x", "y"}));
  // Rule 0's frontier {x,y} is guarded by Flat(x,y), so only rule 1 shows.
}

TEST(Fragments, MonadicWitnessNamesArityAndDefiningRules) {
  auto vocab = MakeVocabulary();
  Program sg = MustParse(kSameGen, vocab);
  std::vector<Diagnostic> witnesses =
      FragmentViolations(sg, Fragment::kMonadic);
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_NE(witnesses[0].message.find("SG"), std::string::npos);
  EXPECT_NE(witnesses[0].message.find("arity 2"), std::string::npos);
}

TEST(Fragments, NonRecursiveWitnessPointsAtRecursiveAtom) {
  auto vocab = MakeVocabulary();
  Program reach = MustParse(kReach, vocab);
  std::vector<Diagnostic> witnesses =
      FragmentViolations(reach, Fragment::kNonRecursive);
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].loc.rule, 1);
  EXPECT_EQ(witnesses[0].loc.atoms, std::vector<int>{1});  // the P(y) atom
}

TEST(Fragments, RequiredFragmentEscalatesToError) {
  auto vocab = MakeVocabulary();
  Program sg = MustParse(kSameGen, vocab);
  AnalysisOptions options;
  options.required_fragments = {Fragment::kFrontierGuarded};
  AnalysisResult result = AnalyzeProgram(sg, options);
  EXPECT_FALSE(result.ok());
  auto errors = WithCheck(result.diagnostics, "fragment-frontier-guarded");
  ASSERT_GE(errors.size(), 1u);
  EXPECT_EQ(errors[0].severity, Severity::kError);
  EXPECT_FALSE(result.fragments.frontier_guarded);
  EXPECT_FALSE(result.fragments.monadic);
  EXPECT_FALSE(result.fragments.non_recursive);
}

// The Thm 6 gadget (Figures 1-5 machinery): the builder promises an MDL
// query and UCQ (non-recursive) views; the analyzer must agree and must
// stay witness-free on both.
TEST(Fragments, Thm6GadgetQueryIsMonadicViewsAreNonRecursive) {
  Thm6Gadget gadget = BuildThm6(SolvableTilingProblem());
  EXPECT_TRUE(InFragment(gadget.query.program, Fragment::kMonadic));
  EXPECT_TRUE(
      FragmentViolations(gadget.query.program, Fragment::kMonadic).empty());
  EXPECT_FALSE(InFragment(gadget.query.program, Fragment::kNonRecursive));

  AnalysisOptions options;
  options.goal = gadget.query.goal;
  AnalysisResult result = AnalyzeProgram(gadget.query.program, options);
  EXPECT_TRUE(result.ok()) << FormatDiagnostics(result.diagnostics);
  EXPECT_TRUE(result.fragments.monadic);

  for (const View& view : gadget.views.views()) {
    EXPECT_TRUE(InFragment(view.definition.program, Fragment::kNonRecursive))
        << gadget.views.vocab()->name(view.pred);
  }
}

// ---------------------------------------------------------------------------
// Analyzer registry

TEST(Analyzer, RegistryListsDisablesAndExtends) {
  ProgramAnalyzer analyzer;
  std::vector<std::string> ids = analyzer.CheckIds();
  for (const char* expected :
       {"safety", "arity", "reachability", "singleton-variable",
        "recursion-structure", "fragment-non-recursive", "fragment-monadic",
        "fragment-frontier-guarded", "plan-lints", "always-empty-predicate",
        "dead-rule", "subsumed-rule", "redundant-body-atom",
        "unbound-adornment"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }

  auto vocab = MakeVocabulary();
  Program p = MustParse("Goal() :- A(x), B(y).", vocab);
  EXPECT_TRUE(analyzer.DisableCheck("plan-lints"));
  EXPECT_FALSE(analyzer.DisableCheck("plan-lints"));
  EXPECT_TRUE(
      WithCheck(analyzer.Analyze(p).diagnostics, "plan-cross-product")
          .empty());

  analyzer.AddCheck("rule-budget", [](const ProgramAnalyzer::Input& in,
                                      std::vector<Diagnostic>* out) {
    if (in.program.rules().size() > 0) {
      out->push_back(
          MakeDiagnostic(Severity::kNote, "rule-budget", "has rules"));
    }
  });
  EXPECT_EQ(WithCheck(analyzer.Analyze(p).diagnostics, "rule-budget").size(),
            1u);
}

// ---------------------------------------------------------------------------
// User-reachable paths return diagnostics instead of aborting

TEST(TryApis, UnfoldToUcqReportsRecursionAndOverflow) {
  auto vocab = MakeVocabulary();
  DatalogQuery reach = MustParseQuery(kReach, "Goal", vocab);
  std::vector<Diagnostic> diags;
  EXPECT_FALSE(TryUnfoldToUcq(reach, 100000, &diags).has_value());
  EXPECT_FALSE(WithCheck(diags, "fragment-non-recursive").empty());

  auto vocab2 = MakeVocabulary();
  DatalogQuery ucq = MustParseQuery(
      "Goal() :- A(x), R(x,y), B(y).\nGoal() :- C(z).", "Goal", vocab2);
  auto unfolded = TryUnfoldToUcq(ucq);
  ASSERT_TRUE(unfolded.has_value());
  EXPECT_EQ(unfolded->disjuncts().size(), 2u);

  diags.clear();
  EXPECT_FALSE(TryUnfoldToUcq(ucq, /*max_disjuncts=*/1, &diags).has_value());
  auto overflow = WithCheck(diags, "unfold-overflow");
  ASSERT_EQ(overflow.size(), 1u);
  EXPECT_EQ(overflow[0].severity, Severity::kError);
}

TEST(TryApis, NormalizeMdlRejectsNonMonadicWithWitnesses) {
  auto vocab = MakeVocabulary();
  DatalogQuery sg = MustParseQuery(kSameGen, "Goal", vocab);
  std::vector<Diagnostic> diags;
  EXPECT_FALSE(TryNormalizeMdl(sg, &diags).has_value());
  EXPECT_FALSE(WithCheck(diags, "fragment-monadic").empty());

  auto vocab2 = MakeVocabulary();
  DatalogQuery reach = MustParseQuery(kReach, "Goal", vocab2);
  diags.clear();
  auto normalized = TryNormalizeMdl(reach, &diags);
  ASSERT_TRUE(normalized.has_value());
  EXPECT_TRUE(diags.empty());
}

TEST(TryApis, ViewSetTryAddViewValidatesAndReportsFragment) {
  auto vocab = MakeVocabulary();
  DatalogQuery reach = MustParseQuery(kReach, "Goal", vocab);
  ViewSet views(vocab);
  std::vector<Diagnostic> diags;
  auto ok = views.TryAddView("V", reach, &diags);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(views.views().size(), 1u);

  // Frontier-guard-violating definition, rejected with the exact witness.
  DatalogQuery sg = MustParseQuery(kSameGen, "Goal", vocab);
  auto bad =
      views.TryAddView("W", sg, &diags, Fragment::kFrontierGuarded);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(views.views().size(), 1u);  // nothing added
  auto witnesses = WithCheck(diags, "fragment-frontier-guarded");
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].loc.rule, 1);
  EXPECT_EQ(witnesses[0].loc.atoms, (std::vector<int>{0, 2}));
  EXPECT_NE(witnesses[0].message.find("view W"), std::string::npos);
}

TEST(TryApis, MonDetCheckRejectsFragmentViolationAsInvalidInput) {
  auto vocab = MakeVocabulary();
  DatalogQuery sg = MustParseQuery(kSameGen, "Goal", vocab);
  ViewSet views(vocab);
  views.AddAtomicView("VFlat", *vocab->FindPredicate("Flat"));

  MonDetOptions options;
  options.require_query_fragment = Fragment::kFrontierGuarded;
  MonDetResult result = CheckMonotonicDeterminacy(sg, views, options);
  EXPECT_EQ(result.verdict, Verdict::kInvalidInput);
  auto witnesses = WithCheck(result.diagnostics, "fragment-frontier-guarded");
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].loc.rule, 1);
  EXPECT_EQ(witnesses[0].loc.atoms, (std::vector<int>{0, 2}));
}

TEST(TryApis, MonDetCheckRejectsVocabularyMismatch) {
  auto vocab = MakeVocabulary();
  DatalogQuery reach = MustParseQuery(kReach, "Goal", vocab);
  auto other = MakeVocabulary();
  ViewSet views(other);
  MonDetResult result = CheckMonotonicDeterminacy(reach, views, {});
  EXPECT_EQ(result.verdict, Verdict::kInvalidInput);
  EXPECT_FALSE(WithCheck(result.diagnostics, "view-vocabulary").empty());
}

// ---------------------------------------------------------------------------
// mondet-lint driver (golden output; the CLI is a thin wrapper over this)

TEST(Lint, CleanProgramGoldenJson) {
  LintResult result =
      LintProgramText("# goal: Goal\nGoal() :- A(x), R(x,y), B(y).\n");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.parsed);
  EXPECT_EQ(result.json,
            "{\"ok\":true,\"parsed\":true,\"rules\":1,\"errors\":0,"
            "\"warnings\":0,\"notes\":1,\"disabled_checks\":[],"
            "\"fragments\":{\"non_recursive\":true,\"monadic\":true,"
            "\"frontier_guarded\":true},"
            "\"recursion\":{\"strata\":1,\"recursive\":false,\"linear\":true,"
            "\"cyclic_idbs\":[]},"
            "\"diagnostics\":[{\"severity\":\"note\","
            "\"check\":\"recursion-structure\",\"message\":\"1 stratum; no "
            "recursion (the query is equivalent to a UCQ)\",\"rule\":-1,"
            "\"atoms\":[],\"vars\":[],\"line\":0,\"col\":0}]}");
}

TEST(Lint, CleanProgramGoldenSarif) {
  LintResult result =
      LintProgramText("# goal: Goal\nGoal() :- A(x), R(x,y), B(y).\n");
  std::string sarif = LintRunToSarif({FileLint{"examples/clean.dl", result}});
  EXPECT_EQ(
      sarif,
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":"
      "{\"name\":\"mondet-lint\",\"informationUri\":\"docs/ANALYSIS.md\","
      "\"rules\":[{\"id\":\"recursion-structure\"}]}},"
      "\"artifacts\":[{\"location\":{\"uri\":\"examples/clean.dl\"}}],"
      "\"results\":[{\"ruleId\":\"recursion-structure\",\"ruleIndex\":0,"
      "\"level\":\"note\",\"message\":{\"text\":\"1 stratum; no recursion "
      "(the query is equivalent to a UCQ)\"},\"locations\":"
      "[{\"physicalLocation\":{\"artifactLocation\":"
      "{\"uri\":\"examples/clean.dl\",\"index\":0}}}]}]}]}");
}

TEST(Lint, SarifRunCoversAllFilesWithRegionsAndLevels) {
  // One run per invocation: two files, one clean and one that violates a
  // required fragment, share the sorted rule table.
  LintResult clean =
      LintProgramText("# goal: Goal\nGoal() :- A(x), R(x,y), B(y).\n");
  LintOptions options;
  options.required_fragments = {Fragment::kFrontierGuarded};
  LintResult bad = LintProgramText(
      "# goal: Goal\n"
      "SG(x,y) :- Flat(x,y).\n"
      "SG(x,y) :- Up(x,u), SG(u,v), Down(v,y).\n"
      "Goal() :- SG(x,y), Src(x), Dst(y).\n",
      options);
  std::string sarif = LintRunToSarif(
      {FileLint{"a.dl", clean}, FileLint{"b.dl", bad}});
  // Both artifacts, in invocation order.
  EXPECT_NE(sarif.find("\"artifacts\":[{\"location\":{\"uri\":\"a.dl\"}},"
                       "{\"location\":{\"uri\":\"b.dl\"}}]"),
            std::string::npos)
      << sarif;
  // The violation is an error result anchored at its source line in b.dl.
  EXPECT_NE(sarif.find("\"ruleId\":\"fragment-frontier-guarded\""),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos) << sarif;
  EXPECT_NE(
      sarif.find("{\"uri\":\"b.dl\",\"index\":1},\"region\":"
                 "{\"startLine\":3,\"startColumn\":1}"),
      std::string::npos)
      << sarif;
  // ruleIndex values point into the sorted rule table.
  EXPECT_NE(sarif.find("\"rules\":[{\"id\":\"fragment-frontier-guarded\"}"),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"ruleId\":\"fragment-frontier-guarded\","
                       "\"ruleIndex\":0"),
            std::string::npos)
      << sarif;
}

TEST(Lint, FrontierGuardViolationGoldenTextAndJson) {
  LintOptions options;
  options.required_fragments = {Fragment::kFrontierGuarded};
  LintResult result = LintProgramText(
      "# goal: Goal\n"
      "SG(x,y) :- Flat(x,y).\n"
      "SG(x,y) :- Up(x,u), SG(u,v), Down(v,y).\n"
      "Goal() :- SG(x,y), Src(x), Dst(y).\n",
      options);
  EXPECT_EQ(result.exit_code, 1);
  // The text report names the exact rule and atom set.
  EXPECT_NE(result.text.find(
                "error[fragment-frontier-guarded] line 3:1 rule 1 "
                "(atom 0, atom 2) {x, y}:"),
            std::string::npos)
      << result.text;
  EXPECT_NE(result.text.find("candidate guards: Up/2[atom 0] Down/2[atom 2]"),
            std::string::npos)
      << result.text;
  // So does the JSON report.
  EXPECT_NE(result.json.find("\"check\":\"fragment-frontier-guarded\""),
            std::string::npos)
      << result.json;
  EXPECT_NE(result.json.find("\"rule\":1,\"atoms\":[0,2],"
                             "\"vars\":[\"x\",\"y\"],\"line\":3"),
            std::string::npos)
      << result.json;
  EXPECT_NE(result.json.find("\"ok\":false"), std::string::npos);
}

TEST(Lint, ParseFailureIsDiagnosedNotAborted) {
  LintResult result = LintProgramText("Goal(x) :- R(y,z).");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_FALSE(result.parsed);
  EXPECT_FALSE(WithCheck(result.diagnostics, "safety").empty());
  EXPECT_NE(result.json.find("\"parsed\":false"), std::string::npos);
}

TEST(Lint, WerrorPromotesWarningsToFailure) {
  const char* text = "# goal: Goal\nGoal() :- R(x,y), U(x).\n";
  EXPECT_EQ(LintProgramText(text).exit_code, 0);  // singleton y: warning only
  LintOptions options;
  options.werror = true;
  EXPECT_EQ(LintProgramText(text, options).exit_code, 1);
}

TEST(Lint, GoalCommentAndOptionControlReachability) {
  // The "# goal:" comment wires up the reachability checks...
  LintResult with_comment = LintProgramText(
      "# goal: Goal\nGoal() :- P(x).\nP(x) :- U(x).\nDead(x) :- W(x).\n");
  EXPECT_FALSE(WithCheck(with_comment.diagnostics, "unused-predicate").empty());
  // ...and --goal overrides it.
  LintOptions options;
  options.goal = "Nope";
  LintResult bad_goal =
      LintProgramText("Goal() :- P(x).\nP(x) :- U(x).\n", options);
  EXPECT_EQ(bad_goal.exit_code, 1);
  EXPECT_FALSE(WithCheck(bad_goal.diagnostics, "goal").empty());
}

TEST(Lint, DisableCheckSurfacesInJsonAndWarnsOnUnknownIds) {
  LintOptions options;
  options.disabled_checks = {"dead-rule", "no-such-check"};
  LintResult result = LintProgramText(kDeadRules, options);
  // Only successfully disabled ids are recorded — "clean because the
  // check was off" stays distinguishable from "clean".
  EXPECT_NE(result.json.find("\"disabled_checks\":[\"dead-rule\"]"),
            std::string::npos)
      << result.json;
  EXPECT_TRUE(WithCheck(result.diagnostics, "dead-rule").empty());
  EXPECT_FALSE(
      WithCheck(result.diagnostics, "always-empty-predicate").empty());
  auto unknown = WithCheck(result.diagnostics, "unknown-check");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_NE(unknown[0].message.find("no-such-check"), std::string::npos);
}

TEST(Lint, DataflowDumpAppendedToTextAndJson) {
  LintOptions options;
  options.goal = "Query";
  options.dataflow_dump = true;
  LintResult result = LintProgramText(kDeadRules, options);
  ASSERT_FALSE(result.dataflow.empty());
  EXPECT_NE(result.dataflow.find("emptiness/constant-set fixpoint"),
            std::string::npos)
      << result.dataflow;
  EXPECT_NE(result.dataflow.find("Empty/1 idb: empty"), std::string::npos)
      << result.dataflow;
  EXPECT_NE(result.dataflow.find("rule 0: dead"), std::string::npos);
  EXPECT_NE(result.dataflow.find("rule 3: subsumed by rule 2"),
            std::string::npos)
      << result.dataflow;
  EXPECT_NE(result.dataflow.find("adornments"), std::string::npos);
  // The dump rides along in both rendered forms.
  EXPECT_NE(result.text.find(result.dataflow), std::string::npos);
  EXPECT_NE(result.json.find("\"dataflow\":"), std::string::npos);
  // Off by default.
  EXPECT_TRUE(LintProgramText(kDeadRules).dataflow.empty());
}

TEST(Lint, SarifRuleTableCoversEveryRegisteredCheck) {
  // Legacy registry ids whose emitted diagnostic ids differ; everything
  // else emits under its own id.
  auto emitted_ids = [](const std::string& check) {
    if (check == "reachability") {
      return std::vector<std::string>{"unused-predicate", "unreachable-rule"};
    }
    if (check == "plan-lints") {
      return std::vector<std::string>{"plan-cross-product"};
    }
    return std::vector<std::string>{check};
  };

  // Files that together trigger every registered check at least once.
  std::vector<FileLint> files;
  files.push_back({"safety.dl", LintProgramText("Goal(x) :- R(y,z).")});
  files.push_back(
      {"arity.dl", LintProgramText("A(x) :- R(x).\nB(x) :- R(x,y).")});
  files.push_back({"reach.dl",
                   LintProgramText("# goal: Goal\n"
                                   "Goal() :- A(x), B(y).\n"
                                   "P(x) :- U(x).\n")});
  LintOptions frag_options;
  frag_options.required_fragments = {Fragment::kNonRecursive,
                                     Fragment::kMonadic,
                                     Fragment::kFrontierGuarded};
  files.push_back({"fragments.dl", LintProgramText(kSameGen, frag_options)});
  LintOptions dataflow_options;
  dataflow_options.goal = "Query";
  files.push_back(
      {"dataflow.dl", LintProgramText(kDeadRules, dataflow_options)});

  std::string sarif = LintRunToSarif(files);
  for (const std::string& check : ProgramAnalyzer().CheckIds()) {
    for (const std::string& id : emitted_ids(check)) {
      EXPECT_NE(sarif.find("{\"id\":\"" + id + "\"}"), std::string::npos)
          << "registered check '" << check << "' never surfaced a SARIF "
          << "rule entry for '" << id << "' — extend the trigger files";
    }
  }
}

TEST(Lint, ParseFragmentNames) {
  EXPECT_EQ(ParseFragmentName("monadic"), Fragment::kMonadic);
  EXPECT_EQ(ParseFragmentName("non-recursive"), Fragment::kNonRecursive);
  EXPECT_EQ(ParseFragmentName("frontier-guarded"), Fragment::kFrontierGuarded);
  EXPECT_FALSE(ParseFragmentName("guarded").has_value());
}

}  // namespace
}  // namespace mondet
