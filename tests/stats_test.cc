// Property tests for the planner statistics (base/stats.h): collection is
// exact on small instances (counts match a brute-force recount), Refresh
// agrees with a fresh Collect, the selectivity estimates match hand
// calculations, planning from stale statistics still yields correct
// fixpoints (stale stats may cost time, never correctness), feedback
// corrections damp/clamp as documented, and Apply aborts on the
// stale-snapshot footgun — a delta that does not extend the counted
// instance. (The Apply-vs-Collect equivalence oracle lives in
// stats_incremental_test.cc.)

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <span>
#include <vector>

#include "base/stats.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/program.h"
#include "testing/reference.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

VocabularyPtr SmallVocab() {
  auto vocab = MakeVocabulary();
  vocab->AddPredicate("U", 1);
  vocab->AddPredicate("R", 2);
  vocab->AddPredicate("T", 3);
  return vocab;
}

/// Brute-force recount of one predicate straight off facts().
PredicateStats BruteForce(const Instance& inst, PredId p) {
  PredicateStats ps;
  ps.distinct.assign(inst.vocab()->arity(p), 0);
  std::vector<std::set<ElemId>> vals(inst.vocab()->arity(p));
  for (const Fact& f : inst.AllFacts()) {
    if (f.pred != p) continue;
    ++ps.cardinality;
    for (size_t i = 0; i < f.args.size(); ++i) vals[i].insert(f.args[i]);
  }
  for (size_t i = 0; i < vals.size(); ++i) ps.distinct[i] = vals[i].size();
  return ps;
}

TEST(StatsTest, CollectIsExactOnRandomInstances) {
  auto vocab = SmallVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  for (unsigned seed = 0; seed < 50; ++seed) {
    Instance inst = RandomInstance(vocab, preds, 6, 12, 1000 + seed);
    Stats stats = Stats::Collect(inst);
    for (PredId p : preds) {
      PredicateStats want = BruteForce(inst, p);
      EXPECT_EQ(stats.cardinality(p), want.cardinality) << "seed " << seed;
      for (size_t i = 0; i < want.distinct.size(); ++i) {
        EXPECT_EQ(stats.distinct(p, i), want.distinct[i])
            << "seed " << seed << " pred " << vocab->name(p) << " pos " << i;
      }
    }
  }
}

TEST(StatsTest, RefreshMatchesFreshCollect) {
  auto vocab = SmallVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, preds, 5, 8, 2000 + seed);
    Stats stats = Stats::Collect(inst);
    // Grow the instance, refresh only the changed predicates.
    std::mt19937 rng(3000 + seed);
    std::uniform_int_distribution<ElemId> elem(0, inst.num_elements() - 1);
    PredId r = *vocab->FindPredicate("R");
    PredId u = *vocab->FindPredicate("U");
    for (int i = 0; i < 6; ++i) {
      inst.AddFact(r, {elem(rng), elem(rng)});
      inst.AddFact(u, {elem(rng)});
    }
    stats.Refresh(inst, {r, u});
    Stats fresh = Stats::Collect(inst);
    for (PredId p : preds) {
      EXPECT_EQ(stats.cardinality(p), fresh.cardinality(p)) << "seed " << seed;
      for (int i = 0; i < vocab->arity(p); ++i) {
        EXPECT_EQ(stats.distinct(p, i), fresh.distinct(p, i))
            << "seed " << seed;
      }
    }
  }
}

TEST(StatsTest, EstimateMatchesHandComputed) {
  auto vocab = SmallVocab();
  Instance inst(vocab);
  ElemId a = inst.AddElement("a"), b = inst.AddElement("b"),
         c = inst.AddElement("c");
  PredId r = *vocab->FindPredicate("R");
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {a, c});
  inst.AddFact(r, {b, c});
  Stats stats = Stats::Collect(inst);
  EXPECT_EQ(stats.cardinality(r), 3u);
  EXPECT_EQ(stats.distinct(r, 0), 2u);  // {a, b}
  EXPECT_EQ(stats.distinct(r, 1), 2u);  // {b, c}
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {false, false}), 3.0);
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {true, false}), 1.5);
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {false, true}), 1.5);
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {true, true}), 0.75);
  // Unknown / empty predicates estimate to zero rows.
  PredId u = *vocab->FindPredicate("U");
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(u, {false}), 0.0);
}

TEST(StatsTest, ObserveDampsAndClampsCorrections) {
  auto vocab = SmallVocab();
  Instance inst(vocab);
  ElemId a = inst.AddElement(), b = inst.AddElement(), c = inst.AddElement();
  PredId r = *vocab->FindPredicate("R");
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {a, c});
  inst.AddFact(r, {b, c});
  Stats stats = Stats::Collect(inst);
  EXPECT_EQ(stats.ActiveCorrections(), 0u);
  EXPECT_DOUBLE_EQ(stats.correction(r), 1.0);

  // One 4x underestimate moves the factor half the error in log space:
  // sqrt(4) = 2. Estimates scale accordingly.
  stats.Observe(r, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(stats.correction(r), 2.0);
  EXPECT_EQ(stats.ActiveCorrections(), 1u);
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {false, false}), 6.0);

  // Repeated huge errors saturate at the 16x clamp, never beyond.
  for (int i = 0; i < 20; ++i) stats.Observe(r, 1.0, 1e9);
  EXPECT_DOUBLE_EQ(stats.correction(r), 16.0);

  // Nonpositive estimates carry no signal; actual == 0 is the strongest
  // overestimate and pulls toward the lower clamp.
  double before = stats.correction(r);
  stats.Observe(r, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(stats.correction(r), before);
  for (int i = 0; i < 20; ++i) stats.Observe(r, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(stats.correction(r), 1.0 / 16.0);

  // ImportCorrections copies factors without touching counts; Refresh
  // recounts without touching factors.
  Stats fresh = Stats::Collect(inst);
  fresh.ImportCorrections(stats);
  EXPECT_DOUBLE_EQ(fresh.correction(r), 1.0 / 16.0);
  EXPECT_EQ(fresh.cardinality(r), 3u);
  fresh.Refresh(inst, {r});
  EXPECT_DOUBLE_EQ(fresh.correction(r), 1.0 / 16.0);
  EXPECT_EQ(fresh.cardinality(r), 3u);
}

TEST(StatsDeathTest, ApplyRejectsDeltaFromADifferentInstance) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto vocab = SmallVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  Instance snapshot_src = RandomInstance(vocab, preds, 4, 6, 6000);
  Instance other = RandomInstance(vocab, preds, 6, 14, 6001);
  Stats stats = Stats::Collect(snapshot_src);
  ASSERT_NE(stats.counted_facts() + 1, other.num_facts());
  // The fact-count contract check fires even in release builds
  // (MONDET_CHECK is always on): a snapshot of A fed a delta of B aborts
  // instead of silently corrupting the counts.
  const std::vector<Fact> other_facts = other.AllFacts();
  std::span<const Fact> delta(other_facts.data(), 1);
  EXPECT_DEATH(stats.Apply(other, delta), "Stats::Apply");
}

TEST(StatsDeathTest, ApplyRejectsAlreadyCountedFacts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto vocab = SmallVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  Instance inst = RandomInstance(vocab, preds, 4, 6, 6002);
  Stats stats = Stats::Collect(inst);
  ASSERT_GT(inst.num_facts(), 0u);
  // Re-offering a counted fact would double-count: |counted| + |delta|
  // overshoots inst.num_facts() and the contract check aborts.
  const std::vector<Fact> inst_facts = inst.AllFacts();
  std::span<const Fact> delta(inst_facts.data(), 1);
  EXPECT_DEATH(stats.Apply(inst, delta), "Stats::Apply");
}

TEST(StatsDeathTest, ApplyRejectsRemovalOfNeverCountedFact) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto vocab = SmallVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  Instance inst = RandomInstance(vocab, preds, 4, 6, 6003);
  ASSERT_GT(inst.num_facts(), 0u);
  Stats stats = Stats::Collect(inst);
  // Balance the contract equation by genuinely removing one fact, but
  // report the removal of a fact the snapshot never counted: the
  // per-value (or per-relation) check aborts instead of driving some
  // other fact's multiplicity negative.
  Fact removed = inst.FactAt(0);
  ASSERT_TRUE(inst.RemoveFact(removed));
  ElemId fresh = inst.AddElement();
  std::vector<Fact> bogus = {
      Fact(*vocab->FindPredicate("R"), {fresh, fresh})};
  EXPECT_DEATH(stats.Apply(inst, {}, bogus), "Stats::Apply");
}

TEST(StatsDeathTest, ApplyRejectsDoubleDelete) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto vocab = SmallVocab();
  Instance inst(vocab);
  ElemId a = inst.AddElement(), b = inst.AddElement();
  PredId r = *vocab->FindPredicate("R");
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {a, a});
  Stats stats = Stats::Collect(inst);
  // Remove two facts but report the same one twice: the batch balances
  // the equation, so it is the per-value zero-crossing that must catch
  // the second, already-erased removal.
  ASSERT_TRUE(inst.RemoveFact(Fact(r, {a, b})));
  ASSERT_TRUE(inst.RemoveFact(Fact(r, {a, a})));
  std::vector<Fact> twice = {Fact(r, {a, b}), Fact(r, {a, b})};
  EXPECT_DEATH(stats.Apply(inst, {}, twice), "Stats::Apply");

  // The honest report lands; re-deleting after that — a second batch
  // claiming the same removal — trips the counted-facts equation itself.
  std::vector<Fact> both = {Fact(r, {a, b}), Fact(r, {a, a})};
  stats.Apply(inst, {}, both);
  EXPECT_EQ(stats.cardinality(r), 0u);
  std::vector<Fact> once = {Fact(r, {a, b})};
  EXPECT_DEATH(stats.Apply(inst, {}, once), "Stats::Apply");
}

TEST(StatsTest, StaleStatsStillYieldCorrectFixpoints) {
  // Plan from statistics of instance A while evaluating instance B: the
  // orders may be bad, the fixpoint must be identical to the naive
  // reference and to the default (live-stats) run.
  auto vocab = MakeVocabulary();
  PredId u = vocab->AddPredicate("U", 1);
  PredId r = vocab->AddPredicate("R", 2);
  PredId p = vocab->AddPredicate("P", 1);
  PredId q = vocab->AddPredicate("Q", 2);
  Program program(vocab);
  {
    RuleBuilder rb(vocab);
    rb.Head(p, {"x"});
    rb.Atom(u, {"x"});
    program.AddRule(rb.Build());
  }
  {
    RuleBuilder rb(vocab);
    rb.Head(p, {"y"});
    rb.Atom(p, {"x"});
    rb.Atom(r, {"x", "y"});
    program.AddRule(rb.Build());
  }
  {
    RuleBuilder rb(vocab);
    rb.Head(q, {"x", "y"});
    rb.Atom(p, {"x"});
    rb.Atom(r, {"x", "y"});
    rb.Atom(p, {"y"});
    program.AddRule(rb.Build());
  }
  std::vector<PredId> preds = {u, r};
  for (unsigned seed = 0; seed < 30; ++seed) {
    Instance stale_src = RandomInstance(vocab, preds, 4, 6, 4000 + seed);
    Instance inst = RandomInstance(vocab, preds, 8, 20, 5000 + seed);
    Stats stale = Stats::Collect(stale_src);

    CompiledProgram compiled(program);
    EvalOptions with_stale;
    with_stale.num_threads = 1;
    with_stale.stats = &stale;
    Instance got = compiled.Eval(inst, nullptr, with_stale);
    Instance naive = NaiveFpEval(program, inst);
    EvalOptions with_live;
    with_live.num_threads = 1;
    with_live.stats_min_facts = 0;  // instances sit below the size gate
    Instance live = compiled.Eval(inst, nullptr, with_live);

    ASSERT_EQ(naive.num_facts(), got.num_facts()) << "seed " << seed;
    for (const Fact& f : naive.AllFacts()) {
      EXPECT_TRUE(got.HasFact(f)) << "seed " << seed;
    }
    // Same fact set as the default live-stats run (the sequences may
    // differ: join orders change the enumeration order within a round).
    ASSERT_EQ(live.num_facts(), got.num_facts()) << "seed " << seed;
    for (const Fact& f : live.AllFacts()) {
      EXPECT_TRUE(got.HasFact(f)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mondet
