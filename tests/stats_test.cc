// Property tests for the planner statistics (base/stats.h): collection is
// exact on small instances (counts match a brute-force recount), Refresh
// agrees with a fresh Collect, the selectivity estimates match hand
// calculations, and planning from stale statistics still yields correct
// fixpoints (stale stats may cost time, never correctness).

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "base/stats.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/program.h"
#include "tests/naive_eval.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

VocabularyPtr SmallVocab() {
  auto vocab = MakeVocabulary();
  vocab->AddPredicate("U", 1);
  vocab->AddPredicate("R", 2);
  vocab->AddPredicate("T", 3);
  return vocab;
}

/// Brute-force recount of one predicate straight off facts().
PredicateStats BruteForce(const Instance& inst, PredId p) {
  PredicateStats ps;
  ps.distinct.assign(inst.vocab()->arity(p), 0);
  std::vector<std::set<ElemId>> vals(inst.vocab()->arity(p));
  for (const Fact& f : inst.facts()) {
    if (f.pred != p) continue;
    ++ps.cardinality;
    for (size_t i = 0; i < f.args.size(); ++i) vals[i].insert(f.args[i]);
  }
  for (size_t i = 0; i < vals.size(); ++i) ps.distinct[i] = vals[i].size();
  return ps;
}

TEST(StatsTest, CollectIsExactOnRandomInstances) {
  auto vocab = SmallVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  for (unsigned seed = 0; seed < 50; ++seed) {
    Instance inst = RandomInstance(vocab, preds, 6, 12, 1000 + seed);
    Stats stats = Stats::Collect(inst);
    for (PredId p : preds) {
      PredicateStats want = BruteForce(inst, p);
      EXPECT_EQ(stats.cardinality(p), want.cardinality) << "seed " << seed;
      for (size_t i = 0; i < want.distinct.size(); ++i) {
        EXPECT_EQ(stats.distinct(p, i), want.distinct[i])
            << "seed " << seed << " pred " << vocab->name(p) << " pos " << i;
      }
    }
  }
}

TEST(StatsTest, RefreshMatchesFreshCollect) {
  auto vocab = SmallVocab();
  std::vector<PredId> preds = vocab->AllPredicates();
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, preds, 5, 8, 2000 + seed);
    Stats stats = Stats::Collect(inst);
    // Grow the instance, refresh only the changed predicates.
    std::mt19937 rng(3000 + seed);
    std::uniform_int_distribution<ElemId> elem(0, inst.num_elements() - 1);
    PredId r = *vocab->FindPredicate("R");
    PredId u = *vocab->FindPredicate("U");
    for (int i = 0; i < 6; ++i) {
      inst.AddFact(r, {elem(rng), elem(rng)});
      inst.AddFact(u, {elem(rng)});
    }
    stats.Refresh(inst, {r, u});
    Stats fresh = Stats::Collect(inst);
    for (PredId p : preds) {
      EXPECT_EQ(stats.cardinality(p), fresh.cardinality(p)) << "seed " << seed;
      for (int i = 0; i < vocab->arity(p); ++i) {
        EXPECT_EQ(stats.distinct(p, i), fresh.distinct(p, i))
            << "seed " << seed;
      }
    }
  }
}

TEST(StatsTest, EstimateMatchesHandComputed) {
  auto vocab = SmallVocab();
  Instance inst(vocab);
  ElemId a = inst.AddElement("a"), b = inst.AddElement("b"),
         c = inst.AddElement("c");
  PredId r = *vocab->FindPredicate("R");
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {a, c});
  inst.AddFact(r, {b, c});
  Stats stats = Stats::Collect(inst);
  EXPECT_EQ(stats.cardinality(r), 3u);
  EXPECT_EQ(stats.distinct(r, 0), 2u);  // {a, b}
  EXPECT_EQ(stats.distinct(r, 1), 2u);  // {b, c}
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {false, false}), 3.0);
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {true, false}), 1.5);
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {false, true}), 1.5);
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(r, {true, true}), 0.75);
  // Unknown / empty predicates estimate to zero rows.
  PredId u = *vocab->FindPredicate("U");
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(u, {false}), 0.0);
}

TEST(StatsTest, StaleStatsStillYieldCorrectFixpoints) {
  // Plan from statistics of instance A while evaluating instance B: the
  // orders may be bad, the fixpoint must be identical to the naive
  // reference and to the default (live-stats) run.
  auto vocab = MakeVocabulary();
  PredId u = vocab->AddPredicate("U", 1);
  PredId r = vocab->AddPredicate("R", 2);
  PredId p = vocab->AddPredicate("P", 1);
  PredId q = vocab->AddPredicate("Q", 2);
  Program program(vocab);
  {
    RuleBuilder rb(vocab);
    rb.Head(p, {"x"});
    rb.Atom(u, {"x"});
    program.AddRule(rb.Build());
  }
  {
    RuleBuilder rb(vocab);
    rb.Head(p, {"y"});
    rb.Atom(p, {"x"});
    rb.Atom(r, {"x", "y"});
    program.AddRule(rb.Build());
  }
  {
    RuleBuilder rb(vocab);
    rb.Head(q, {"x", "y"});
    rb.Atom(p, {"x"});
    rb.Atom(r, {"x", "y"});
    rb.Atom(p, {"y"});
    program.AddRule(rb.Build());
  }
  std::vector<PredId> preds = {u, r};
  for (unsigned seed = 0; seed < 30; ++seed) {
    Instance stale_src = RandomInstance(vocab, preds, 4, 6, 4000 + seed);
    Instance inst = RandomInstance(vocab, preds, 8, 20, 5000 + seed);
    Stats stale = Stats::Collect(stale_src);

    CompiledProgram compiled(program);
    EvalOptions with_stale;
    with_stale.num_threads = 1;
    with_stale.stats = &stale;
    Instance got = compiled.Eval(inst, nullptr, with_stale);
    Instance naive = NaiveFpEval(program, inst);
    EvalOptions with_live;
    with_live.num_threads = 1;
    with_live.stats_min_facts = 0;  // instances sit below the size gate
    Instance live = compiled.Eval(inst, nullptr, with_live);

    ASSERT_EQ(naive.num_facts(), got.num_facts()) << "seed " << seed;
    for (const Fact& f : naive.facts()) {
      EXPECT_TRUE(got.HasFact(f)) << "seed " << seed;
    }
    // Same fact set as the default live-stats run (the sequences may
    // differ: join orders change the enumeration order within a round).
    ASSERT_EQ(live.num_facts(), got.num_facts()) << "seed " << seed;
    for (const Fact& f : live.facts()) {
      EXPECT_TRUE(got.HasFact(f)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mondet
