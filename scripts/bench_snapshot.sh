#!/usr/bin/env bash
# Perf trajectory snapshot: run the tier-1 bench smoke set, then capture
# the Table 2 families (including the MONDET_THREADS sweeps) as JSON in
# BENCH_table2.json at the repo root, so future PRs can diff wall times
# and counters (tests, cache_hits, transition_visits) against this one.
#
#   BENCH_MIN_TIME  per-benchmark min time in seconds (default 0.05; the
#                   smoke pass always uses the tier-1 value of 0.01)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MIN_TIME="${BENCH_MIN_TIME:-0.05}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build -j "$JOBS" --target \
  bench_table1 bench_table2 bench_fig1_gridtests bench_fig2_startimage \
  bench_fig3_diamonds bench_fig4_longrows bench_fig5_lemma3 \
  bench_maintenance bench_kernels bench_antichain

# Smoke pass: every bench binary once, same flags as the tier-1 ctests.
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "== smoke: $(basename "$b")"
  "$b" --benchmark_min_time=0.01 > /dev/null
done

# Snapshot pass: Table 2 only, longer min_time, JSON committed at the root.
./build/bench/bench_table2 \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out=BENCH_table2.json \
  --benchmark_out_format=json

# Figure 4 row-family evaluator sweep: the incremental-vs-recount
# statistics comparison (BM_Fig4_RowFamilyEval vs ..._RecountStats vs
# ..._StaticPlan; stats_applies / stats_counted expose the
# O(stratum facts) -> O(delta) maintenance drop). Merged into
# BENCH_table2.json when python3 is around, kept as a sibling file
# otherwise.
./build/bench/bench_fig4_longrows \
  --benchmark_filter='BM_Fig4_RowFamilyEval' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out=BENCH_fig4_rowfamily.json \
  --benchmark_out_format=json

# Antichain-inclusion rung: lazy NtaIncluded vs the explicit
# Complement+Product route on the exponential family (macrostates /
# det_states counters expose the O(k)-vs-2^k gap; the explicit arm is
# capped at k = 12 by design — see bench/bench_antichain.cc).
./build/bench/bench_antichain \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out=BENCH_antichain.json \
  --benchmark_out_format=json

if command -v python3 > /dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_table2.json") as f:
    table2 = json.load(f)
extra = []
for path, prefixes in [
    ("BENCH_fig4_rowfamily.json", ("BM_Fig4_RowFamilyEval",)),
    ("BENCH_antichain.json", ("BM_AntichainInclusion", "BM_ExplicitInclusion")),
]:
    with open(path) as f:
        extra.extend(json.load(f)["benchmarks"])
    table2["benchmarks"] = [
        b for b in table2["benchmarks"]
        if not b["name"].startswith(prefixes)
    ]
table2["benchmarks"] += extra
with open("BENCH_table2.json", "w") as f:
    json.dump(table2, f, indent=2)
    f.write("\n")
EOF
  rm -f BENCH_fig4_rowfamily.json BENCH_antichain.json
  echo "bench_snapshot: wrote BENCH_table2.json (incl. fig4 row-family" \
       "sweep and antichain rung)"
else
  echo "bench_snapshot: wrote BENCH_table2.json, BENCH_fig4_rowfamily.json" \
       "and BENCH_antichain.json"
fi

# Maintenance churn family: maintained view image vs from-scratch
# recompute under small insert/delete batches, plus the self-checking
# speedup gauge (counter `speedup`; the acceptance bar is >= 2x on these
# small-delta steps — the SetLabel flags any run below it).
./build/bench/bench_maintenance \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out=BENCH_maintenance.json \
  --benchmark_out_format=json
echo "bench_snapshot: wrote BENCH_maintenance.json"

# Kernel probe-shape family: each compiled-kernel shape (single-position
# probe, binary-min probe, membership, scan) against the generic
# interpreter on the same workload (the *_Off twins). The on/off time
# ratio per shape is the kernel plane's worth; the `facts` counters must
# match pairwise (each bench self-checks in its label).
./build/bench/bench_kernels \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out=BENCH_kernels.json \
  --benchmark_out_format=json
echo "bench_snapshot: wrote BENCH_kernels.json"
