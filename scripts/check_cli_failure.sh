#!/usr/bin/env bash
# Asserts that a command fails *gracefully*: exit code 1 (a report, not a
# crash/abort, which would exit 134 or similar) and at least one formatted
# diagnostic ("error[...]") on stderr.
#
# Usage: check_cli_failure.sh <binary> <args...>
set -u

out="$("$@" 2>&1)"
status=$?

if [ "$status" -ne 1 ]; then
  echo "expected exit code 1 (diagnostic report), got $status" >&2
  echo "--- output ---" >&2
  echo "$out" >&2
  exit 1
fi
case "$out" in
  *"error["*) ;;
  *)
    echo "expected at least one 'error[...]' diagnostic in the output" >&2
    echo "--- output ---" >&2
    echo "$out" >&2
    exit 1
    ;;
esac
exit 0
