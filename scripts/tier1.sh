#!/usr/bin/env bash
# Tier-1 gate: the fast test suite in the default build, plus the
# differential evaluator oracle under ASan/UBSan at 1 and 4 threads.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

# Fast suite (tier1-labelled tests) in the default build.
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

# Static analysis gate: every example program must lint without errors
# (mondet_lint_examples runs the same command as a tier1 ctest; repeated
# here so the gate still fires when examples/programs/ gains files after
# the build directory was configured).
./build/tools/mondet-lint examples/programs/*.dl > /dev/null

# clang-tidy over the analysis subsystem. The binary is looked up by
# plain name and by the versioned names distros install; the `tidy`
# CMake preset configures the compile database the pass runs against.
# Default: skip with a notice when no binary exists (the minimal CI
# image ships only gcc). Set MONDET_REQUIRE_CLANG_TIDY=1 to turn a
# missing binary into a hard failure — full CI images set it so the
# pass can never be skipped silently there.
CLANG_TIDY=""
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    CLANG_TIDY="$cand"
    break
  fi
done
if [ -n "$CLANG_TIDY" ]; then
  # Once a binary is known to exist on this machine, the pass may never
  # again be skipped silently (e.g. by nested tier1 runs or CI re-execs
  # that mangle PATH): missing clang-tidy becomes a hard failure.
  export MONDET_REQUIRE_CLANG_TIDY=1
  cmake --preset tidy > /dev/null
  "$CLANG_TIDY" -p build-tidy --quiet src/analysis/*.cc
elif [ "${MONDET_REQUIRE_CLANG_TIDY:-0}" != "0" ]; then
  echo "tier1: clang-tidy required (MONDET_REQUIRE_CLANG_TIDY) but not found" >&2
  exit 1
else
  echo "tier1: clang-tidy not found, skipping lint pass"
fi

# Differential oracles under ASan/UBSan, single- and multi-threaded.
# plan_differential_test exercises the statistics-driven planner (live
# re-planning, seat observation buffers, the feedback-correction fold)
# against the naive reference; stats_incremental_test is the
# Apply-vs-Collect equivalence oracle for the merge-barrier statistics
# maintenance (value-count maps under random delta partitions, now
# including the retraction arm); maintenance_differential_test is the
# maintained-vs-recomputed materialization oracle for incremental view
# maintenance (counting + DRed over randomized insert/delete schedules
# — its from-scratch recomputations run at MONDET_THREADS, so both
# parallel modes cross-check the maintained state);
# mondet_parallel_test is the determinism oracle for the parallel
# counterexample search (thread pool + canonical test cache), run at 4
# workers so the sanitizers see real interleaving;
# dataflow_soundness_test is the abstract-interpretation soundness
# oracle (concrete fixpoint contained in the abstract one, dead rules
# never fire, pruning bit-identical at 1/4 threads);
# kernel_differential_test is the columnar data plane's invisibility
# oracle (compiled join kernels vs the generic interpreter, byte-
# identical sequences at 1 and 4 threads);
# antichain_test is the lazy-inclusion arm: NtaIncluded vs the explicit
# Complement+Product route, the Thm 5 antichain-on/off byte-identity
# regression, and the antichain-inclusion oracle seed sweep.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMONDET_SANITIZE=ON
cmake --build build-asan -j "$JOBS" --target eval_differential_test plan_differential_test kernel_differential_test stats_test stats_incremental_test maintenance_differential_test mondet_parallel_test dataflow_soundness_test antichain_test mondet-fuzz
MONDET_THREADS=1 ./build-asan/tests/eval_differential_test
MONDET_THREADS=4 ./build-asan/tests/eval_differential_test
./build-asan/tests/dataflow_soundness_test
./build-asan/tests/plan_differential_test
MONDET_THREADS=1 ./build-asan/tests/kernel_differential_test
MONDET_THREADS=4 ./build-asan/tests/kernel_differential_test
./build-asan/tests/stats_test
./build-asan/tests/stats_incremental_test
MONDET_THREADS=1 ./build-asan/tests/maintenance_differential_test
MONDET_THREADS=4 ./build-asan/tests/maintenance_differential_test
MONDET_THREADS=4 ./build-asan/tests/mondet_parallel_test
MONDET_THREADS=1 ./build-asan/tests/antichain_test
MONDET_THREADS=4 ./build-asan/tests/antichain_test

# Fuzz smoke arm: mondet-fuzz over every registered oracle at fixed
# seeds under ASan/UBSan (~10s). Deterministic — the same seeds every
# run, so a failure here is a reproducible regression, and the harness
# prints the shrunk `.repro` path in its failure output (replay with
# `mondet-fuzz --replay <path>`).
FUZZ_OUT="build-asan/fuzz-repros"
mkdir -p "$FUZZ_OUT"
if ! ./build-asan/tools/mondet-fuzz --seeds 16 --out "$FUZZ_OUT"; then
  echo "tier1: fuzz smoke FAILED — shrunk repros under $FUZZ_OUT" \
       "(see 'repro written to' lines above)" >&2
  exit 1
fi

# Fault-injection gate: deliberately broken evaluators
# (MONDET_FAULT=skip-delta-seat drops the last recursive delta seat;
# MONDET_FAULT=skip-kernel-row trims the last row of every compiled
# kernel enumeration; MONDET_FAULT=skip-antichain-prune makes the
# NtaIncluded subsumption prune bidirectional, i.e. unsound) must be
# caught by the eval-differential, kernel-differential and
# antichain-inclusion oracles within the smoke seed budget and shrunk
# to <= 5 rules (<= 6 NTA transitions) — proof the harness detects and
# the shrinker reduces, not just that everything is green.
./scripts/check_fuzz_fault.sh ./build-asan/tools/mondet-fuzz

# Race detection: the genuinely multi-threaded oracles — the parallel
# counterexample search, the maintained-materialization differential,
# and the kernel differential (whose 4T arms run compiled kernels over
# shared column indexes) — under ThreadSanitizer at 4 workers (the `tsan` CMake preset builds the
# same tree). TSan needs compiler runtime support (libtsan); minimal
# images often lack it, so probe the compiler first and make any skip
# loud rather than silent.
CXX_BIN="${CXX:-c++}"
TSAN_PROBE="build/.tsan_probe.$$"
if printf 'int main(){return 0;}\n' \
    | "$CXX_BIN" -x c++ -fsanitize=thread -o "$TSAN_PROBE" - \
      > /dev/null 2>&1; then
  rm -f "$TSAN_PROBE"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMONDET_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" \
        --target mondet_parallel_test maintenance_differential_test \
        kernel_differential_test antichain_test
  MONDET_THREADS=4 ./build-tsan/tests/mondet_parallel_test
  MONDET_THREADS=4 ./build-tsan/tests/maintenance_differential_test
  MONDET_THREADS=4 ./build-tsan/tests/kernel_differential_test
  MONDET_THREADS=4 ./build-tsan/tests/antichain_test
else
  rm -f "$TSAN_PROBE"
  echo "==================================================================" >&2
  echo "tier1: NOTICE — ThreadSanitizer arm SKIPPED." >&2
  echo "tier1: $CXX_BIN cannot link -fsanitize=thread (libtsan missing?);" >&2
  echo "tier1: data races in the parallel oracles go undetected here." >&2
  echo "==================================================================" >&2
fi

echo "tier1: OK"
