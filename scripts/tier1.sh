#!/usr/bin/env bash
# Tier-1 gate: the fast test suite in the default build, plus the
# differential evaluator oracle under ASan/UBSan at 1 and 4 threads.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

# Fast suite (tier1-labelled tests) in the default build.
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

# Differential oracle under ASan/UBSan, single- and multi-threaded.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMONDET_SANITIZE=ON
cmake --build build-asan -j "$JOBS" --target eval_differential_test
MONDET_THREADS=1 ./build-asan/tests/eval_differential_test
MONDET_THREADS=4 ./build-asan/tests/eval_differential_test

echo "tier1: OK"
