#!/usr/bin/env bash
# Fault-injection gate for the fuzz harness: a deliberately broken
# evaluator must be *caught* and the failure must *shrink*.
#
# Three faults, one per data plane:
#
#   MONDET_FAULT=skip-delta-seat makes the semi-naive evaluator drop the
#   last recursive delta seat of every rule (src/datalog/eval_plan.cc),
#   so some derivations that need late delta rounds are silently lost —
#   caught by the eval-differential oracle.
#
#   MONDET_FAULT=skip-kernel-row makes every compiled join kernel trim
#   the last candidate row of every enumeration (src/datalog/kernel.cc),
#   so the kernel plane diverges from the generic interpreter — caught
#   by the kernel-differential oracle.
#
#   MONDET_FAULT=skip-antichain-prune makes NtaIncluded's subsumption
#   prune bidirectional (src/automata/ops.cc): it also discards new
#   macrostates that are *subsets* of visited ones, which is unsound —
#   inclusion verdicts flip to "included" — and is caught by the
#   antichain-inclusion oracle's three-way agreement contract.
#
# For each (oracle, fault) pair this script asserts that mondet-fuzz
#
#   1. reports failures within the smoke seed budget (exit 1, not 0 —
#      the harness would be decorative if a lost fixpoint got through),
#   2. writes a shrunk repro whose program has at most 5 rules — or,
#      for the NTA gate, at most 6 automaton transitions total —
#      (the delta-debugging loop must actually reduce), and
#   3. passes the very same seeds against the unbroken evaluator
#      (the fault, not the harness, is what trips).
#
# Usage: check_fuzz_fault.sh <mondet-fuzz binary> [seeds]
set -u

bin="${1:?usage: check_fuzz_fault.sh <mondet-fuzz binary> [seeds]}"
seeds="${2:-64}"

run_phase() {
  local oracle="$1" fault="$2" gate="${3:-rules}"
  local outdir out status rules trans
  outdir="$(mktemp -d)"

  # Clean control run: same seeds, healthy evaluator, must be green.
  out="$("$bin" --oracle "$oracle" --seeds "$seeds" --out "$outdir" 2>&1)"
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "fuzz-fault[$oracle]: clean run failed (exit $status)" \
         "— real bug?" >&2
    echo "$out" >&2
    rm -rf "$outdir"
    return 1
  fi

  # Faulted run: must trip (exit 1) and leave at least one repro behind.
  out="$(MONDET_FAULT="$fault" \
          "$bin" --oracle "$oracle" --seeds "$seeds" --out "$outdir" 2>&1)"
  status=$?
  if [ "$status" -ne 1 ]; then
    echo "fuzz-fault[$oracle]: injected fault $fault NOT caught" \
         "(exit $status, expected 1) over $seeds seeds" >&2
    echo "$out" >&2
    rm -rf "$outdir"
    return 1
  fi

  local repros=("$outdir/$oracle"-seed*.repro)
  if [ ! -e "${repros[0]}" ]; then
    echo "fuzz-fault[$oracle]: failures reported but no repro written" \
         "to $outdir" >&2
    echo "$out" >&2
    rm -rf "$outdir"
    return 1
  fi

  if [ "$gate" = "nta" ]; then
    # Shrinking gate for NTA cases: the two [nta ...] sections together
    # keep at most 6 leaf/unary/binary transition lines.
    trans=$(awk '/^\[nta /{inp=1; next} /^\[/{inp=0}
                 inp && /^(leaf|unary|binary) /{n++} END{print n+0}' \
            "${repros[0]}")
    if [ "$trans" -gt 6 ]; then
      echo "fuzz-fault[$oracle]: shrunk repro still has $trans NTA" \
           "transitions (want <= 6):" >&2
      cat "${repros[0]}" >&2
      rm -rf "$outdir"
      return 1
    fi
    echo "fuzz-fault[$oracle]: OK — $fault caught, shrunk repro has" \
         "$trans NTA transitions (${repros[0]##*/})"
    rm -rf "$outdir"
    return 0
  fi

  # Shrinking gate: the first repro's [program] section has <= 5 rules.
  # Rules are the ':-'-bearing lines between [program] and the next
  # section header.
  rules=$(awk '/^\[program\]/{inp=1; next} /^\[/{inp=0}
               inp && /:-/{n++} END{print n+0}' "${repros[0]}")
  if [ "$rules" -gt 5 ]; then
    echo "fuzz-fault[$oracle]: shrunk repro still has $rules rules" \
         "(want <= 5):" >&2
    cat "${repros[0]}" >&2
    rm -rf "$outdir"
    return 1
  fi

  echo "fuzz-fault[$oracle]: OK — $fault caught, shrunk repro has" \
       "$rules rules (${repros[0]##*/})"
  rm -rf "$outdir"
  return 0
}

run_phase eval-differential skip-delta-seat || exit 1
run_phase kernel-differential skip-kernel-row || exit 1
run_phase antichain-inclusion skip-antichain-prune nta || exit 1
exit 0
