// Churn benchmark for incremental view maintenance: a maintained view
// image under small insert/delete batches versus from-scratch
// recomputation of the same image. The workload is transitive closure
// over an n-node path — the image carries Θ(n²) facts while cutting and
// re-adding the head edge only touches the Θ(n) paths through it, so
// maintenance (counting + DRed) must beat recompute by a widening margin
// as n grows. bench_snapshot.sh records both families in
// BENCH_maintenance.json; the acceptance bar is maintain ≥ 2x recompute
// on these small-delta steps.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "datalog/eval_plan.h"
#include "datalog/parser.h"
#include "views/maintained_image.h"
#include "views/view_set.h"

namespace mondet {
namespace {

struct ChurnWorkload {
  VocabularyPtr vocab = MakeVocabulary();
  ViewSet views;
  Instance base;
  PredId r = kNoPred;
  Fact head_edge;

  explicit ChurnWorkload(int n)
      : views(vocab), base(vocab), head_edge(0, {}) {
    r = vocab->AddPredicate("R", 2);
    PredId u = vocab->AddPredicate("U", 1);
    views.AddAtomicView("VR", r);
    views.AddAtomicView("VU", u);
    // Recursive transitive-closure view: its maintenance runs the DRed
    // delete-rederive path; the atomic views run the counting path.
    std::vector<Diagnostic> diags;
    auto vt = ParseQuery(R"(
      VT0(x,y) :- R(x,y).
      VT0(x,z) :- R(x,y), VT0(y,z).
    )",
                         "VT0", vocab, &diags);
    views.AddView("VT", *vt);
    std::vector<ElemId> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(base.AddElement());
    for (int i = 0; i + 1 < n; ++i) {
      base.AddFact(r, {nodes[i], nodes[i + 1]});
    }
    base.AddFact(u, {nodes[n - 1]});
    head_edge = Fact(r, {nodes[0], nodes[1]});
  }
};

/// One churn cycle: cut the head edge, then restore it. Net zero, so the
/// workload is stable across iterations; each half-batch retracts /
/// rederives the Θ(n) closure facts through the edge out of the Θ(n²)
/// image.
void BM_Maintenance_ChurnMaintain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ChurnWorkload w(n);
  MaintainedImage maintained(w.views, w.base);
  EvalStats stats;
  size_t touched = 0;
  for (auto _ : state) {
    ImageDelta cut = maintained.ApplyDelta({}, {w.head_edge}, &stats);
    ImageDelta mend = maintained.ApplyDelta({w.head_edge}, {}, &stats);
    touched = cut.deletes.size() + mend.inserts.size();
  }
  state.counters["image_facts"] =
      static_cast<double>(maintained.image().num_facts());
  state.counters["touched_per_cycle"] = static_cast<double>(touched);
  state.counters["overdeleted"] = static_cast<double>(stats.overdeleted);
  state.counters["rederived"] = static_cast<double>(stats.rederived);

  // The headline contract, checked once after the timed loop: the
  // maintained image is bit-identical (as a set) to a recompute.
  Instance fresh = maintained.FreshImage();
  std::vector<Fact> got = maintained.image().AllFacts();
  std::vector<Fact> want = fresh.AllFacts();
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  state.SetLabel(got == want ? "maintained image == recomputed image"
                             : "MAINTENANCE DIVERGED");
}
BENCHMARK(BM_Maintenance_ChurnMaintain)->Arg(64)->Arg(256)->Arg(512);

/// The same churn cycle answered by from-scratch recomputation: mutate
/// the base, rebuild the whole view image, restore, rebuild again.
void BM_Maintenance_ChurnRecompute(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ChurnWorkload w(n);
  size_t image_facts = 0;
  for (auto _ : state) {
    w.base.RemoveFact(w.head_edge);
    Instance cut_image = w.views.Image(w.base);
    w.base.AddFact(w.head_edge);
    Instance full_image = w.views.Image(w.base);
    image_facts = full_image.num_facts();
    benchmark::DoNotOptimize(cut_image);
    benchmark::DoNotOptimize(full_image);
  }
  state.counters["image_facts"] = static_cast<double>(image_facts);
  state.SetLabel("from-scratch image per churn step");
}
BENCHMARK(BM_Maintenance_ChurnRecompute)->Arg(64)->Arg(256)->Arg(512);

/// Self-checking speedup gauge: times both strategies back to back over
/// the same cycles and reports the ratio, so the ≥2x acceptance bar is a
/// counter in BENCH_maintenance.json rather than a post-processing step.
void BM_Maintenance_Speedup(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ChurnWorkload w(n);
  MaintainedImage maintained(w.views, w.base);
  const int cycles = 3;
  double speedup = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < cycles; ++i) {
      maintained.ApplyDelta({}, {w.head_edge});
      maintained.ApplyDelta({w.head_edge}, {});
    }
    auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < cycles; ++i) {
      w.base.RemoveFact(w.head_edge);
      Instance cut_image = w.views.Image(w.base);
      w.base.AddFact(w.head_edge);
      Instance full_image = w.views.Image(w.base);
      benchmark::DoNotOptimize(cut_image);
      benchmark::DoNotOptimize(full_image);
    }
    auto t2 = std::chrono::steady_clock::now();
    double maintain_s = std::chrono::duration<double>(t1 - t0).count();
    double recompute_s = std::chrono::duration<double>(t2 - t1).count();
    speedup = maintain_s > 0 ? recompute_s / maintain_s : 0;
  }
  state.counters["speedup"] = speedup;
  state.SetLabel(speedup >= 2.0
                     ? "maintenance >= 2x recompute on small-delta churn"
                     : "SPEEDUP BELOW 2x");
}
BENCHMARK(BM_Maintenance_Speedup)->Arg(64)->Arg(256)->Arg(512);

}  // namespace
}  // namespace mondet
