// The antichain-inclusion rung: lazy NtaIncluded vs the explicit
// Complement + Product + IsEmpty route on the exponential family of
// testing/generator.h (a = the single A-chain of length k+1, b = "the
// node k below the root is labeled A"). Determinizing b over the chain
// universe materializes ~2^(k+1) subset states, so the explicit arm is
// capped at k = 12 — past that it stops being a benchmark and becomes a
// memory test — while the antichain arm strolls through k = 18 visiting
// O(k) macrostates. Both arms assert the verdict (inclusion holds) so a
// soundness regression trips the smoke run, and the antichain arm
// additionally asserts macrostates < 2^k, the whole point of the rung.

#include <benchmark/benchmark.h>

#include <string>

#include "automata/ops.h"
#include "testing/generator.h"

namespace mondet {
namespace {

SymbolUniverse FamilyUniverse(int k) {
  SymbolUniverse u = SymbolsOf(testing::ChainOfANta(k + 1));
  u.Merge(SymbolsOf(testing::NthBelowRootIsANta(k)));
  return u;
}

void BM_AntichainInclusion(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Nta a = testing::ChainOfANta(k + 1);
  const Nta b = testing::NthBelowRootIsANta(k);
  const SymbolUniverse u = FamilyUniverse(k);
  NtaInclusionResult r;
  for (auto _ : state) {
    r = NtaIncluded(a, b, u);
    benchmark::DoNotOptimize(r.included);
  }
  state.counters["macrostates"] = static_cast<double>(r.macrostates_visited);
  state.counters["pairs"] = static_cast<double>(r.pairs_explored);
  state.counters["prunes"] = static_cast<double>(r.subsumption_prunes);
  const bool small = r.macrostates_visited < (1ull << k);
  state.SetLabel(r.included && small
                     ? "included; macrostates well below 2^k"
                     : "REGRESSION: wrong verdict or macrostate blowup");
}
BENCHMARK(BM_AntichainInclusion)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(18);

void BM_ExplicitInclusion(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Nta a = testing::ChainOfANta(k + 1);
  const Nta b = testing::NthBelowRootIsANta(k);
  const SymbolUniverse u = FamilyUniverse(k);
  bool included = false;
  size_t det_states = 0;
  for (auto _ : state) {
    const Nta comp = Complement(b, u);
    det_states = comp.num_states();
    included = IsEmpty(Product(a, comp));
    benchmark::DoNotOptimize(included);
  }
  state.counters["det_states"] = static_cast<double>(det_states);
  state.SetLabel(included ? "included; paid full determinization"
                          : "REGRESSION: wrong verdict");
}
BENCHMARK(BM_ExplicitInclusion)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
}  // namespace mondet
