// Table 1: rewritability of queries monotonically determined by views.
// One benchmark per cell; each builds the rewriting the paper predicts,
// machine-verifies it on an instance family, and reports the verified
// shape via the label (rewriting language + verification outcome).

#include <benchmark/benchmark.h>

#include "base/homomorphism.h"
#include "core/rewriting.h"
#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "games/pebble.h"
#include "games/unravel.h"
#include "reductions/lemma6.h"
#include "reductions/thm6.h"
#include "reductions/thm7.h"
#include "reductions/thm8.h"
#include "tests/test_util.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

// --- Cell: CQ query / Datalog views → CQ rewriting (Prop. 8(a)). ---------
void BM_T1_CqOverDatalog_CqRewriting(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  CQ q = *ParseCq("Q() :- U(x).", vocab, &error);
  auto def = ParseQuery(
      "Reach(x) :- R(x,y), U(y).\nReach(x) :- R(x,y), Reach(y).", "Reach",
      vocab, &diags);
  ViewSet views(vocab);
  views.AddView("VReach", *def);
  views.AddCqView("VU", *ParseCq("VU(x) :- U(x).", vocab, &error));
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  bool verified = true;
  for (auto _ : state) {
    auto rewriting = SimpleCqRewriting(q, views);
    benchmark::DoNotOptimize(rewriting);
    for (unsigned seed = 0; seed < 10; ++seed) {
      Instance inst = RandomInstance(vocab, {r, u}, 4, 6, seed);
      verified = verified &&
                 q.HoldsOn(inst) == rewriting->HoldsOn(views.Image(inst));
    }
  }
  state.SetLabel(verified ? "rewriting=CQ verified=yes (paper: CQ)"
                          : "VERIFICATION FAILED");
}
BENCHMARK(BM_T1_CqOverDatalog_CqRewriting);

// --- Cell: UCQ query / Datalog views → UCQ rewriting (Prop. 8(b)). -------
void BM_T1_UcqOverDatalog_UcqRewriting(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::string error;
  auto ucq = ParseUcq("Q() :- U(x).\nQ() :- R(x,y), R(y,x).", vocab, &error);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddCqView("VU", *ParseCq("VU(x) :- U(x).", vocab, &error));
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  bool verified = true;
  for (auto _ : state) {
    auto rewriting = SimpleUcqRewriting(*ucq, views);
    for (unsigned seed = 0; seed < 10; ++seed) {
      Instance inst = RandomInstance(vocab, {r, u}, 4, 6, seed);
      verified = verified &&
                 ucq->HoldsOn(inst) == rewriting->HoldsOn(views.Image(inst));
    }
  }
  state.SetLabel(verified ? "rewriting=UCQ verified=yes (paper: UCQ)"
                          : "VERIFICATION FAILED");
}
BENCHMARK(BM_T1_UcqOverDatalog_UcqRewriting);

// --- Cell: FGDL query / CQ views → FGDL rewriting ([14] + appendix). -----
void BM_T1_FgdlOverCq_FgdlRewriting(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    Conn(x,y) :- S(x,y,z).
    Conn(x,y) :- S(x,y,z), Conn(x,z), Conn(z,y).
    Goal() :- Conn(x,x).
  )",
                      "Goal", vocab, &diags);
  ViewSet views(vocab);
  views.AddCqView("V",
                  *ParseCq("V(x,y,z) :- S(x,y,u), S(u,y,z).", vocab, &error));
  InverseRulesOptions options;
  options.frontier_guard = true;
  bool fg = false;
  size_t rules = 0;
  for (auto _ : state) {
    DatalogQuery rewriting = InverseRulesRewriting(*q, views, options);
    fg = IsFrontierGuarded(rewriting.program);
    rules = rewriting.program.rules().size();
  }
  state.counters["rewriting_rules"] = static_cast<double>(rules);
  state.SetLabel(fg ? "rewriting=FGDL verified=frontier-guarded (paper: FGDL)"
                    : "NOT FRONTIER GUARDED");
}
BENCHMARK(BM_T1_FgdlOverCq_FgdlRewriting);

// --- Cell: MDL query / CQ views → Datalog rewriting (Thm 7 gadget). ------
void BM_T1_MdlOverCq_DatalogRewriting(benchmark::State& state) {
  Thm7Gadget gadget = BuildThm7();
  bool verified = true;
  size_t rules = 0;
  for (auto _ : state) {
    DatalogQuery rewriting =
        InverseRulesRewriting(gadget.query, gadget.views);
    rules = rewriting.program.rules().size();
    for (int n = 1; n <= 3; ++n) {
      Instance chain = gadget.DiamondChain(n);
      verified = verified &&
                 DatalogHoldsOn(rewriting, gadget.views.Image(chain));
      Instance broken = gadget.DiamondChain(n, false);
      verified = verified &&
                 !DatalogHoldsOn(rewriting, gadget.views.Image(broken));
    }
  }
  state.counters["rewriting_rules"] = static_cast<double>(rules);
  state.SetLabel(verified
                     ? "rewriting=Datalog verified=yes (paper: FGDL, nn MDL)"
                     : "VERIFICATION FAILED");
}
BENCHMARK(BM_T1_MdlOverCq_DatalogRewriting);

// --- Cell: MDL / CQ — the "not necessarily MDL" half of Thm 7: the
// (1,k)-unravelled view image separates MDL-sized patterns.
void BM_T1_MdlOverCq_NotMdl(benchmark::State& state) {
  Thm7Gadget gadget = BuildThm7();
  bool separation = true;
  for (auto _ : state) {
    Instance image = gadget.views.Image(gadget.DiamondChain(4));
    UnravelOptions options;
    options.k = 4;
    options.depth = 2;
    options.one_overlap = true;
    Unravelling u = BoundedUnravelling(image, options);
    separation = HasHomomorphism(gadget.RRowPattern(1), u.inst) &&
                 !HasHomomorphism(gadget.RRowPattern(2), u.inst);
  }
  state.SetLabel(separation
                     ? "MDL-rewriting impossible: (1,k)-unravelling breaks "
                       "R-rows (paper: nn MDL)"
                     : "SEPARATION FAILED");
}
BENCHMARK(BM_T1_MdlOverCq_NotMdl);

// --- Cell: Datalog query / FGDL(CQ) views → Datalog (Thm 1, Example 1). --
void BM_T1_DatalogOverFgdl_DatalogRewriting(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    Q() :- U1(x), W1(x).
    W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w).
    W1(x) :- U2(x).
  )",
                      "Q", vocab, &diags);
  ViewSet views(vocab);
  views.AddCqView("V0", *ParseCq("V0(x,w) :- T(x,y,z), B(z,w), B(y,w).",
                                 vocab, &error));
  views.AddCqView("V1", *ParseCq("V1(x) :- U1(x).", vocab, &error));
  views.AddCqView("V2", *ParseCq("V2(x) :- U2(x).", vocab, &error));
  PredId t = *vocab->FindPredicate("T");
  PredId b = *vocab->FindPredicate("B");
  PredId u1 = *vocab->FindPredicate("U1");
  PredId u2 = *vocab->FindPredicate("U2");
  bool verified = true;
  for (auto _ : state) {
    DatalogQuery rewriting = InverseRulesRewriting(*q, views);
    for (unsigned seed = 0; seed < 10; ++seed) {
      Instance inst = RandomInstance(vocab, {t, b, u1, u2}, 4, 9, seed);
      verified =
          verified && DatalogHoldsOn(*q, inst) ==
                          DatalogHoldsOn(rewriting, views.Image(inst));
    }
  }
  state.SetLabel(verified ? "rewriting=Datalog verified=yes (paper: Datalog)"
                          : "VERIFICATION FAILED");
}
BENCHMARK(BM_T1_DatalogOverFgdl_DatalogRewriting);

// --- Cell: MDL query / UCQ views — no Datalog rewriting (Thm 8). ---------
// The obstruction: grids are not tileable by TP*, but win the k-pebble
// game against I_TP* — view images become k-indistinguishable from
// instances where the query differs, and Fact 2 kills every Datalog
// rewriting.
void BM_T1_MdlOverUcq_NoDatalog(benchmark::State& state) {
  TilingProblem tp = MakeParityTilingProblem();
  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  Instance target = TilingProblemAsInstance(tp, vocab, schema);
  int n = static_cast<int>(state.range(0));
  Instance grid = GridInstance(n, n, vocab, schema);
  bool no_hom = true;
  bool game = true;
  for (auto _ : state) {
    no_hom = !HasHomomorphism(grid, target);
    game = DuplicatorWins(grid, target, 2);
  }
  state.SetLabel(no_hom && game
                     ? "no-hom + k-game win: Datalog rewriting impossible "
                       "(paper: nn Datalog)"
                     : "OBSTRUCTION FAILED");
}
BENCHMARK(BM_T1_MdlOverUcq_NoDatalog)->Arg(3)->Arg(4);

// --- Cell: MDL / UCQ — the full Thm 8 pipeline on a bounded unravelling:
// Q(I_ℓ)=True, Q(I'_ℓ)=False, U_ℓ ⊆ V(I'_ℓ).
void BM_T1_MdlOverUcq_FullPipeline(benchmark::State& state) {
  Thm6Gadget gadget = BuildThm6(MakeParityTilingProblem());
  bool separating = true;
  for (auto _ : state) {
    auto pipeline = BuildThm8Pipeline(gadget, 3, 2, 2);
    separating = pipeline.has_value() && pipeline->tiled &&
                 DatalogHoldsOn(gadget.query, pipeline->axes) &&
                 !DatalogHoldsOn(gadget.query, pipeline->iprime);
  }
  state.SetLabel(separating
                     ? "pipeline I_l/I'_l separates (paper: nn Datalog)"
                     : "PIPELINE FAILED");
}
BENCHMARK(BM_T1_MdlOverUcq_FullPipeline);

// --- Cell: MDL query / FGDL+CQ views → Datalog rewriting (Thm 2). --------
void BM_T1_MdlOverMixed_DatalogRewriting(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y), M(y).
    Goal() :- P(x), S(x).
  )",
                      "Goal", vocab, &diags);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));  // CQ views
  views.AddCqView("VU", *ParseCq("VU(x) :- U(x).", vocab, &error));
  views.AddCqView("VM", *ParseCq("VM(x) :- M(x).", vocab, &error));
  views.AddCqView("VS", *ParseCq("VS(x) :- S(x).", vocab, &error));
  std::vector<PredId> preds{
      *vocab->FindPredicate("R"), *vocab->FindPredicate("U"),
      *vocab->FindPredicate("M"), *vocab->FindPredicate("S")};
  bool verified = true;
  for (auto _ : state) {
    DatalogQuery rewriting = InverseRulesRewriting(*q, views);
    for (unsigned seed = 0; seed < 10; ++seed) {
      Instance inst = RandomInstance(vocab, preds, 4, 8, seed);
      verified =
          verified && DatalogHoldsOn(*q, inst) ==
                          DatalogHoldsOn(rewriting, views.Image(inst));
    }
  }
  state.SetLabel(verified ? "rewriting=Datalog verified=yes (paper: Datalog)"
                          : "VERIFICATION FAILED");
}
BENCHMARK(BM_T1_MdlOverMixed_DatalogRewriting);

}  // namespace
}  // namespace mondet
