// Figure 2: a typical approximation of the Qstart atom (the two marked
// axes) and its view image, where the grid-generating view S produces the
// full C×D product. Reproduces the shape: |S(V(I_n,m))| = n*m.

#include <benchmark/benchmark.h>

#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "reductions/thm6.h"

namespace mondet {
namespace {

void BM_Fig2_AxesImage(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm6Gadget gadget = BuildThm6(SolvableTilingProblem());
  PredId s = kNoPred;
  for (const View& v : gadget.views.views()) {
    if (gadget.vocab->name(v.pred) == "S") s = v.pred;
  }
  size_t s_facts = 0;
  bool qstart_true = false;
  for (auto _ : state) {
    Instance axes = gadget.MakeAxes(n, n);
    qstart_true = DatalogHoldsOn(gadget.query, axes);
    Instance image = gadget.views.Image(axes);
    s_facts = image.NumRows(s);
  }
  state.counters["S_facts"] = static_cast<double>(s_facts);
  bool shape = s_facts == static_cast<size_t>(n) * n && qstart_true;
  state.SetLabel(shape ? "S = C x D product (Figure 2(b)); Qstart holds"
                       : "UNEXPECTED image shape");
}
BENCHMARK(BM_Fig2_AxesImage)->Arg(2)->Arg(3)->Arg(5)->Arg(8);

void BM_Fig2_ImageScaling(benchmark::State& state) {
  // Image computation cost as the axes grow (the S-product dominates).
  int n = static_cast<int>(state.range(0));
  Thm6Gadget gadget = BuildThm6(SolvableTilingProblem());
  Instance axes = gadget.MakeAxes(n, n);
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats{};
    Instance image = gadget.views.Image(axes, &stats);
    benchmark::DoNotOptimize(image);
  }
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.SetComplexityN(n);
}
BENCHMARK(BM_Fig2_ImageScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity();

}  // namespace
}  // namespace mondet
