// Figure 4: the long row of R-rectangles. Reproduces the crossover: the
// n-row pattern maps into the view image of an m-diamond chain iff
// m >= n+1, and never maps into a (1,k)-unravelled image.

#include <benchmark/benchmark.h>

#include "base/homomorphism.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "games/unravel.h"
#include "reductions/thm7.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

void BM_Fig4_RowCrossover(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm7Gadget gadget = BuildThm7();
  Instance row = gadget.RRowPattern(n);
  Instance image_eq = gadget.views.Image(gadget.DiamondChain(n));
  Instance image_plus = gadget.views.Image(gadget.DiamondChain(n + 1));
  bool crossover = true;
  for (auto _ : state) {
    crossover = !HasHomomorphism(row, image_eq) &&
                HasHomomorphism(row, image_plus);
  }
  state.SetLabel(crossover
                     ? "row(n) maps into image(m) iff m >= n+1 (Figure 4)"
                     : "UNEXPECTED crossover");
}
BENCHMARK(BM_Fig4_RowCrossover)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The evaluator-bound half of the family: fixpoint of the inverse-rules
// rewriting over the view image of the n-diamond chain. This is the
// long-R-rows workload the compiled semi-naive evaluator targets; the
// counters expose its EvalStats.
void BM_Fig4_RowFamilyEval(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(n));
  EvalStats stats;
  bool holds = false;
  for (auto _ : state) {
    stats = EvalStats{};
    Instance fixpoint = compiled.Eval(image, &stats);
    holds = fixpoint.NumRows(rewriting.goal) > 0;
  }
  state.counters["image_facts"] = static_cast<double>(image.num_facts());
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["facts_derived"] = static_cast<double>(stats.facts_derived);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.counters["stats_applies"] = static_cast<double>(stats.stats_applies);
  state.counters["stats_counted"] =
      static_cast<double>(stats.stats_facts_counted);
  state.counters["rules_pruned"] = static_cast<double>(stats.rules_pruned);
  state.SetLabel(holds ? "rewriting holds on the row family (Figure 4)"
                       : "UNEXPECTED: rewriting failed");
}
BENCHMARK(BM_Fig4_RowFamilyEval)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Dataflow pruning disabled on the same workload: the delta against
// BM_Fig4_RowFamilyEval is what skipping provably-dead rules buys —
// identical fixpoints (dataflow_soundness_test pins bit-identity), fewer
// work items and rounds. eval_iters/join_probes make the saving visible
// even when wall time is noisy.
void BM_Fig4_RowFamilyEval_NoPrune(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(n));
  EvalOptions options;
  options.dataflow_prune = false;
  EvalStats stats;
  bool holds = false;
  for (auto _ : state) {
    stats = EvalStats{};
    Instance fixpoint = compiled.Eval(image, &stats, options);
    holds = fixpoint.NumRows(rewriting.goal) > 0;
  }
  state.counters["image_facts"] = static_cast<double>(image.num_facts());
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["facts_derived"] = static_cast<double>(stats.facts_derived);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.SetLabel(holds ? "rewriting holds on the row family (Figure 4)"
                       : "UNEXPECTED: rewriting failed");
}
BENCHMARK(BM_Fig4_RowFamilyEval_NoPrune)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The recount discipline on the same workload: live planning with
// incremental maintenance disabled, so every stratum entry and mid-run
// re-plan recounts its predicates in full (Stats::Refresh). The
// stats_counted delta against BM_Fig4_RowFamilyEval is the
// O(stratum facts) -> O(delta) drop of the merge-barrier Apply path.
void BM_Fig4_RowFamilyEval_RecountStats(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(n));
  EvalOptions options;
  options.stats_incremental = false;
  EvalStats stats;
  bool holds = false;
  for (auto _ : state) {
    stats = EvalStats{};
    Instance fixpoint = compiled.Eval(image, &stats, options);
    holds = fixpoint.NumRows(rewriting.goal) > 0;
  }
  state.counters["image_facts"] = static_cast<double>(image.num_facts());
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["facts_derived"] = static_cast<double>(stats.facts_derived);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.counters["stats_applies"] = static_cast<double>(stats.stats_applies);
  state.counters["stats_counted"] =
      static_cast<double>(stats.stats_facts_counted);
  state.SetLabel(holds ? "rewriting holds on the row family (Figure 4)"
                       : "UNEXPECTED: rewriting failed");
}
BENCHMARK(BM_Fig4_RowFamilyEval_RecountStats)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Baseline for the statistics-driven planner: the same workload with the
// planner disabled (compile-time EDB-first orders). The delta between
// this and BM_Fig4_RowFamilyEval is the planner's win; join_probes makes
// the work difference visible even when wall time is noisy.
void BM_Fig4_RowFamilyEval_StaticPlan(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  CompiledProgram compiled(rewriting.program);
  Instance image = gadget.views.Image(gadget.DiamondChain(n));
  EvalOptions options;
  options.stats_planner = false;
  EvalStats stats;
  bool holds = false;
  for (auto _ : state) {
    stats = EvalStats{};
    Instance fixpoint = compiled.Eval(image, &stats, options);
    holds = fixpoint.NumRows(rewriting.goal) > 0;
  }
  state.counters["image_facts"] = static_cast<double>(image.num_facts());
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["facts_derived"] = static_cast<double>(stats.facts_derived);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.SetLabel(holds ? "rewriting holds on the row family (Figure 4)"
                       : "UNEXPECTED: rewriting failed");
}
BENCHMARK(BM_Fig4_RowFamilyEval_StaticPlan)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Fig4_UnravelledImageHasNoRows(benchmark::State& state) {
  Thm7Gadget gadget = BuildThm7();
  Instance image = gadget.views.Image(gadget.DiamondChain(5));
  UnravelOptions options;
  options.k = 4;
  options.depth = 2;
  options.one_overlap = true;
  Unravelling u = BoundedUnravelling(image, options);
  bool separation = true;
  for (auto _ : state) {
    separation = HasHomomorphism(gadget.RRowPattern(1), u.inst) &&
                 !HasHomomorphism(gadget.RRowPattern(2), u.inst);
  }
  state.counters["unravelling_nodes"] = static_cast<double>(u.nodes);
  state.SetLabel(separation
                     ? "rows of length >= 2 break in J'_k (Thm 7 proof)"
                     : "SEPARATION FAILED");
}
BENCHMARK(BM_Fig4_UnravelledImageHasNoRows);

}  // namespace
}  // namespace mondet
