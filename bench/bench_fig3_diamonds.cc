// Figure 3: the Thm 7 diamond chains and their view images S·R^{k-1}·T.
// Reproduces the image shape and the query/rewriting behaviour along the
// chain family.

#include <benchmark/benchmark.h>

#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "reductions/thm7.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

void BM_Fig3_ImageShape(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm7Gadget gadget = BuildThm7();
  size_t s = 0, r = 0, t = 0;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats{};
    Instance image = gadget.views.Image(gadget.DiamondChain(n), &stats);
    s = image.NumRows(gadget.s_view);
    r = image.NumRows(gadget.r_view);
    t = image.NumRows(gadget.t_view);
  }
  state.counters["S"] = static_cast<double>(s);
  state.counters["R"] = static_cast<double>(r);
  state.counters["T"] = static_cast<double>(t);
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  bool shape = s == 1 && t == 1 && r == static_cast<size_t>(n) - 1;
  state.SetLabel(shape ? "image = S, R^(n-1), T (Figure 3(b))"
                       : "UNEXPECTED image shape");
}
BENCHMARK(BM_Fig3_ImageShape)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Fig3_QueryAndRewriting(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  bool agree = true;
  for (auto _ : state) {
    Instance chain = gadget.DiamondChain(n);
    Instance image = gadget.views.Image(chain);
    agree = DatalogHoldsOn(gadget.query, chain) ==
            DatalogHoldsOn(rewriting, image);
  }
  state.SetLabel(agree ? "Datalog rewriting agrees on the diamond family"
                       : "MISMATCH");
}
BENCHMARK(BM_Fig3_QueryAndRewriting)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace mondet
