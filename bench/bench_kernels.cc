// Probe-shape microbenchmarks for the compiled join kernels: each
// family drives one KernelStep shape — the single-position probe
// (kProbe1, the transitive-closure join), the two-position binary-min
// probe (kProbe2, two bound positions of a wider atom), the fully-bound
// membership filter (kMembership), and the unbound scan (kScan) —
// through the real evaluator, once with the kernel plane and once
// through the generic interpreter (EvalOptions::compiled_kernels =
// false, the escape hatch). The on/off pair shares one workload, so
// their time delta is the kernel's worth on that shape and nothing
// else; kernel_differential_test pins that the outputs are
// byte-identical. Every benchmark self-checks the on/off fact counts in
// SetLabel, and bench_snapshot.sh records the family in
// BENCH_kernels.json.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "base/instance.h"
#include "datalog/eval_plan.h"
#include "datalog/parser.h"

namespace mondet {
namespace {

/// A workload is a program (by text) plus an instance builder; the
/// benchmark pair evaluates it with kernels on and off.
struct Workload {
  VocabularyPtr vocab = MakeVocabulary();
  std::optional<Program> program;
  Instance inst;

  Workload() : inst(vocab) {}
};

/// kProbe1: transitive closure over an n-node path. The recursive seat
/// probes R on its first position with one bound variable — the hottest
/// shape of the Figure 4 row family.
Workload Probe1Workload(int n) {
  Workload w;
  PredId r = w.vocab->AddPredicate("R", 2);
  ParseResult pr = ParseProgram(R"(
    T(x,y) :- R(x,y).
    T(x,z) :- R(x,y), T(y,z).
  )",
                                w.vocab);
  w.program = std::move(pr.program);
  std::vector<ElemId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(w.inst.AddElement());
  for (int i = 0; i + 1 < n; ++i) w.inst.AddFact(r, {nodes[i], nodes[i + 1]});
  return w;
}

/// kProbe2: a 3-ary relation joined on two bound positions, leaving one
/// free — the kernel takes the smaller of two index buckets and
/// constant-tests the other position before touching the row.
Workload Probe2Workload(int n) {
  Workload w;
  PredId r = w.vocab->AddPredicate("R", 2);
  PredId wp = w.vocab->AddPredicate("W", 3);
  ParseResult pr = ParseProgram(R"(
    Q(x,u) :- R(x,y), W(x,y,u).
    Q(x,u) :- Q(x,v), W(x,v,u).
  )",
                                w.vocab);
  w.program = std::move(pr.program);
  std::vector<ElemId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(w.inst.AddElement());
  for (int i = 0; i + 1 < n; ++i) {
    w.inst.AddFact(r, {nodes[i], nodes[i + 1]});
    // A few W rows per (x, y) pair so the probe enumerates, not just
    // checks.
    for (int k = 0; k < 4; ++k) {
      w.inst.AddFact(wp, {nodes[i], nodes[i + 1],
                          nodes[(i + k) % n]});
    }
  }
  return w;
}

/// kMembership: a fully-bound filter atom — every variable of E is bound
/// by the time the order reaches it, so the kernel replaces a bucket
/// scan with one hash probe of the fact table.
Workload MembershipWorkload(int n) {
  Workload w;
  PredId r = w.vocab->AddPredicate("R", 2);
  PredId e = w.vocab->AddPredicate("E", 2);
  ParseResult pr = ParseProgram(R"(
    T(x,y) :- R(x,y).
    T(x,z) :- R(x,y), T(y,z), E(x,z).
  )",
                                w.vocab);
  w.program = std::move(pr.program);
  std::vector<ElemId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(w.inst.AddElement());
  for (int i = 0; i + 1 < n; ++i) w.inst.AddFact(r, {nodes[i], nodes[i + 1]});
  // E admits every pair at distance <= 3, so membership passes often
  // enough to keep deriving but prunes the long tails.
  for (int i = 0; i < n; ++i) {
    for (int d = 1; d <= 3 && i + d < n; ++d) {
      w.inst.AddFact(e, {nodes[i], nodes[i + d]});
    }
  }
  return w;
}

/// kScan: a body atom with no bound variable (the cross-product tail of
/// a disconnected rule) — the kernel walks the column arena directly.
Workload ScanWorkload(int n) {
  Workload w;
  PredId u = w.vocab->AddPredicate("U", 1);
  PredId v = w.vocab->AddPredicate("V", 1);
  ParseResult pr = ParseProgram(R"(
    P(x,y) :- U(x), V(y).
  )",
                                w.vocab);
  w.program = std::move(pr.program);
  std::vector<ElemId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(w.inst.AddElement());
  for (int i = 0; i < n; ++i) {
    w.inst.AddFact(u, {nodes[i]});
    w.inst.AddFact(v, {nodes[i]});
  }
  return w;
}

void RunShape(benchmark::State& state, const Workload& w, bool kernels) {
  CompiledProgram compiled(*w.program);
  EvalOptions options;
  options.num_threads = 1;
  options.compiled_kernels = kernels;
  // Defeat the size gate: these microbenches measure the kernel plane
  // itself, including on the 64-node workloads below the default gate.
  options.kernel_min_facts = 0;
  EvalStats stats;
  size_t facts = 0;
  for (auto _ : state) {
    stats = EvalStats{};
    Instance fix = compiled.Eval(w.inst, &stats, options);
    facts = fix.num_facts();
  }
  // The escape-hatch cross-check: the other plane derives the same
  // number of facts on this workload (byte-identity is pinned by
  // kernel_differential_test; the count here keeps the bench honest).
  EvalOptions other = options;
  other.compiled_kernels = !kernels;
  const size_t other_facts = compiled.Eval(w.inst, nullptr, other).num_facts();
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["facts_derived"] = static_cast<double>(stats.facts_derived);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.SetLabel(facts == other_facts
                     ? (kernels ? "compiled kernels" : "generic interpreter")
                     : "UNEXPECTED: kernels on/off disagree");
}

void BM_Kernel_Probe1(benchmark::State& state) {
  RunShape(state, Probe1Workload(static_cast<int>(state.range(0))), true);
}
void BM_Kernel_Probe1_Off(benchmark::State& state) {
  RunShape(state, Probe1Workload(static_cast<int>(state.range(0))), false);
}
BENCHMARK(BM_Kernel_Probe1)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Kernel_Probe1_Off)->Arg(64)->Arg(256)->Arg(1024);

void BM_Kernel_Probe2(benchmark::State& state) {
  RunShape(state, Probe2Workload(static_cast<int>(state.range(0))), true);
}
void BM_Kernel_Probe2_Off(benchmark::State& state) {
  RunShape(state, Probe2Workload(static_cast<int>(state.range(0))), false);
}
BENCHMARK(BM_Kernel_Probe2)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Kernel_Probe2_Off)->Arg(64)->Arg(256)->Arg(1024);

void BM_Kernel_Membership(benchmark::State& state) {
  RunShape(state, MembershipWorkload(static_cast<int>(state.range(0))), true);
}
void BM_Kernel_Membership_Off(benchmark::State& state) {
  RunShape(state, MembershipWorkload(static_cast<int>(state.range(0))),
           false);
}
BENCHMARK(BM_Kernel_Membership)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Kernel_Membership_Off)->Arg(64)->Arg(256)->Arg(1024);

void BM_Kernel_Scan(benchmark::State& state) {
  RunShape(state, ScanWorkload(static_cast<int>(state.range(0))), true);
}
void BM_Kernel_Scan_Off(benchmark::State& state) {
  RunShape(state, ScanWorkload(static_cast<int>(state.range(0))), false);
}
BENCHMARK(BM_Kernel_Scan)->Arg(64)->Arg(256);
BENCHMARK(BM_Kernel_Scan_Off)->Arg(64)->Arg(256);

}  // namespace
}  // namespace mondet
