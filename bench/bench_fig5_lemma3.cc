// Figure 5 / Lemma 3: applying connected CQ views of radius r to an
// instance with a width-k decomposition (treespan <= 2) yields a view
// image of treewidth <= k(k^{r+1}-1)/(k-1). Measures the actual width of
// the r-extended decomposition against the bound while sweeping r.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "datalog/parser.h"
#include "tests/test_util.h"
#include "tree/decompose.h"
#include "views/view_set.h"

namespace mondet {
namespace {

/// A chain view of length `len` (radius ~len/2).
CQ ChainView(const VocabularyPtr& vocab, PredId r, int len) {
  CQ cq(vocab);
  std::vector<VarId> vars;
  for (int i = 0; i <= len; ++i) vars.push_back(cq.AddVar());
  for (int i = 0; i < len; ++i) cq.AddAtom(r, {vars[i], vars[i + 1]});
  cq.SetFreeVars({vars[0], vars[len]});
  return cq;
}

void BM_Fig5_Lemma3Bound(benchmark::State& state) {
  int view_len = static_cast<int>(state.range(0));
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 16);
  TreeDecomposition td = Binarize(DecomposeMinFill(path));
  int k = td.width();

  ViewSet views(vocab);
  CQ def = ChainView(vocab, r, view_len);
  int radius = def.Radius();
  views.AddCqView("V", def);

  int measured = 0;
  bool valid = false;
  for (auto _ : state) {
    Instance image = views.Image(path);
    TreeDecomposition extended = ExtendDecomposition(td, radius);
    valid = extended.Validate(image);
    measured = extended.width();
  }
  double bound = k * (std::pow(k, radius + 1) - 1) / (k - 1);
  state.counters["k"] = k;
  state.counters["radius"] = radius;
  state.counters["measured_width"] = measured;
  state.counters["paper_bound"] = bound;
  state.SetLabel(valid && measured <= bound
                     ? "measured width within the Lemma 3 bound"
                     : "BOUND VIOLATED");
}
BENCHMARK(BM_Fig5_Lemma3Bound)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BM_Fig5_TreespanMatters(benchmark::State& state) {
  // The l(TD) <= 2 hypothesis: path decompositions satisfy it; report the
  // actual treespan alongside.
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  int n = static_cast<int>(state.range(0));
  Instance path = MakePath(vocab, r, n);
  int treespan = 0;
  for (auto _ : state) {
    TreeDecomposition td = Binarize(DecomposeMinFill(path));
    treespan = td.MaxBagsPerElement();
  }
  state.counters["treespan"] = treespan;
  state.SetLabel("path decompositions have small treespan (Lemma 1 shape)");
}
BENCHMARK(BM_Fig5_TreespanMatters)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace mondet
