// Figure 1: the grid-like tests for monotonic determinacy. Builds the
// n×m grid test instances (axes + projections + tile marks) for tilings
// produced by the solver, and checks the defining property: the test
// falsifies Q_TP exactly when the tiling is a valid solution.

#include <benchmark/benchmark.h>

#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "reductions/thm6.h"

namespace mondet {
namespace {

void BM_Fig1_GridTest_ValidTiling(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);
  auto solution = tp.Solve(n, n);
  CompiledProgram compiled(gadget.query.program);
  bool query_false = false;
  size_t facts = 0;
  EvalStats stats;
  for (auto _ : state) {
    Instance test = gadget.MakeGridTest(n, n, *solution);
    facts = test.num_facts();
    stats = EvalStats{};
    query_false =
        compiled.Eval(test, &stats).NumRows(gadget.query.goal) == 0;
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.SetLabel(query_false
                     ? "valid tiling -> failing test (Figure 1 shape)"
                     : "UNEXPECTED: query fired");
}
BENCHMARK(BM_Fig1_GridTest_ValidTiling)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BM_Fig1_GridTest_BrokenTiling(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);
  auto solution = tp.Solve(n, n);
  // Corrupt one interior cell to violate a compatibility constraint.
  std::vector<int> broken = *solution;
  broken[1] = broken[0];
  bool query_true = false;
  for (auto _ : state) {
    Instance test = gadget.MakeGridTest(n, n, broken);
    query_true = DatalogHoldsOn(gadget.query, test);
  }
  state.SetLabel(query_true ? "broken tiling -> Qverify fires"
                            : "UNEXPECTED: violation missed");
}
BENCHMARK(BM_Fig1_GridTest_BrokenTiling)->Arg(2)->Arg(3)->Arg(4);

// Adjacency gadgets of Figure 1(b): HA/VA detect exactly the horizontal
// and vertical neighbors of the encoded grid.
void BM_Fig1_AdjacencyGadgets(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);
  auto solution = tp.Solve(n, n);
  Instance test = gadget.MakeGridTest(n, n, *solution);
  CQ ha(gadget.vocab);
  {
    VarId z1 = ha.AddVar("z1"), z2 = ha.AddVar("z2"), y = ha.AddVar("y"),
          x1 = ha.AddVar("x1"), x2 = ha.AddVar("x2");
    ha.AddAtom(gadget.yproj, {y, z1});
    ha.AddAtom(gadget.yproj, {y, z2});
    ha.AddAtom(gadget.xproj, {x1, z1});
    ha.AddAtom(gadget.xproj, {x2, z2});
    ha.AddAtom(gadget.xsucc, {x1, x2});
    ha.SetFreeVars({z1, z2});
  }
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = ha.Evaluate(test).size();
  }
  // (n-1) horizontal neighbor pairs per row, n rows.
  state.counters["ha_pairs"] = static_cast<double>(pairs);
  state.SetLabel(pairs == static_cast<size_t>((n - 1) * n)
                     ? "HA counts = (n-1)*n (Figure 1(b))"
                     : "UNEXPECTED adjacency count");
}
BENCHMARK(BM_Fig1_AdjacencyGadgets)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace mondet
