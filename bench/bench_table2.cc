// Table 2: decidability and complexity of monotonic determinacy. One
// benchmark (family) per cell: positive cells run the decision procedure
// on growing inputs; the undecidable cells run the reductions whose
// behaviour tracks the undecidable source problem; the separator row
// measures the Thm 9 cost growth.

#include <benchmark/benchmark.h>

#include <string>

#include "core/mondet_check.h"
#include "core/separator.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/parser.h"
#include "reductions/prop9.h"
#include "reductions/thm6.h"
#include "reductions/thm6_stratified.h"
#include "reductions/thm9.h"

namespace mondet {
namespace {

/// Path CQ of length n: Q() :- R(x0,x1), ..., R(x_{n-1},x_n).
CQ PathCq(const VocabularyPtr& vocab, PredId r, int n) {
  CQ cq(vocab);
  std::vector<VarId> vars;
  for (int i = 0; i <= n; ++i) vars.push_back(cq.AddVar());
  for (int i = 0; i < n; ++i) cq.AddAtom(r, {vars[i], vars[i + 1]});
  cq.SetFreeVars({});
  return cq;
}

// --- Cell: CQ / CQ — NP-complete [21]; exact canonical tests. ------------
void BM_T2_CqCq_Exact(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  CQ q = PathCq(vocab, r, 2 * n);
  ViewSet views(vocab);
  // View = 2-step pairs: determined for even path lengths.
  std::string error;
  views.AddCqView("V", *ParseCq("V(x,z) :- R(x,y), R(y,z).", vocab, &error));
  Verdict verdict = Verdict::kUnknownBounded;
  for (auto _ : state) {
    MonDetResult result =
        CheckMonotonicDeterminacy(CqAsDatalog(q, "G" + std::to_string(n)),
                                  views);
    verdict = result.verdict;
  }
  state.SetLabel(verdict == Verdict::kDetermined
                     ? "exact: determined (paper: NP-complete)"
                     : "exact: not determined");
}
BENCHMARK(BM_T2_CqCq_Exact)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// --- Cell: UCQ / UCQ — Πp2-complete [22]; exact canonical tests. ---------
void BM_T2_UcqUcq_Exact(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId s = vocab->AddPredicate("S", 1);
  UCQ q(vocab);
  q.AddDisjunct(PathCq(vocab, r, 2 * n));
  {
    CQ d(vocab);
    VarId x = d.AddVar();
    d.AddAtom(s, {x});
    d.SetFreeVars({});
    q.AddDisjunct(d);
  }
  ViewSet views(vocab);
  std::string error;
  views.AddCqView("V", *ParseCq("V(x,z) :- R(x,y), R(y,z).", vocab, &error));
  views.AddAtomicView("VS", s);
  Verdict verdict = Verdict::kUnknownBounded;
  for (auto _ : state) {
    verdict = CheckMonotonicDeterminacy(UcqAsDatalog(q, "G"), views).verdict;
  }
  state.SetLabel(verdict == Verdict::kDetermined
                     ? "exact: determined (paper: Pi^p_2-complete)"
                     : "exact: not determined");
}
BENCHMARK(BM_T2_UcqUcq_Exact)->Arg(1)->Arg(2)->Arg(3);

// --- Cell: CQ / Datalog — 2ExpTime (Thm 5, automata). ---------------------
void BM_T2_CqDatalog_Thm5(benchmark::State& state, bool antichain) {
  int n = static_cast<int>(state.range(0));
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId u = vocab->AddPredicate("U", 1);
  CQ q(vocab);
  {
    std::vector<VarId> vars;
    for (int i = 0; i <= n; ++i) vars.push_back(q.AddVar());
    for (int i = 0; i < n; ++i) q.AddAtom(r, {vars[i], vars[i + 1]});
    q.AddAtom(u, {vars[n]});
    q.SetFreeVars({});
  }
  std::string error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery(
      "Reach(x) :- R(x,y), U(y).\nReach(x) :- R(x,y), Reach(y).", "Reach",
      vocab, &diags);
  ViewSet views(vocab);
  views.AddView("VReach", *def);
  views.AddAtomicView("VR", r);
  ContainmentOptions options;
  options.antichain = antichain;
  size_t pairs = 0;
  size_t visits = 0;
  size_t macrostates = 0;
  size_t prunes = 0;
  bool determined = false;
  for (auto _ : state) {
    Thm5Result result = CheckCqOverDatalogViews(q, views, options);
    pairs = result.pairs_explored;
    visits = result.transition_visits;
    macrostates = result.macrostates_visited;
    prunes = result.subsumption_prunes;
    determined = result.determined;
  }
  state.counters["state_pairs"] = static_cast<double>(pairs);
  state.counters["transition_visits"] = static_cast<double>(visits);
  state.counters["macrostates"] = static_cast<double>(macrostates);
  state.counters["subsumption_prunes"] = static_cast<double>(prunes);
  state.SetLabel(std::string("exact automata decision: ") +
                 (determined ? "determined" : "not determined") +
                 " (paper: 2ExpTime-complete)");
}
// The antichain-on/off twins decide identically (verdicts and
// counterexamples are bit-identical by contract); the wide n=4 rung is
// where the pruned walk's smaller frontier starts to pay.
void BM_T2_CqDatalog_Thm5_Antichain(benchmark::State& state) {
  BM_T2_CqDatalog_Thm5(state, /*antichain=*/true);
}
void BM_T2_CqDatalog_Thm5_FullFixpoint(benchmark::State& state) {
  BM_T2_CqDatalog_Thm5(state, /*antichain=*/false);
}
BENCHMARK(BM_T2_CqDatalog_Thm5_Antichain)->Arg(1)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_T2_CqDatalog_Thm5_FullFixpoint)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// --- Cell: FGDL / FGDL — decidable, 2ExpTime (Thm 3). --------------------
// Realized by the Lemma 5 canonical-test engine on FGDL pairs (exact
// refuter; bounded verifier — see DESIGN.md substitution notes).
void BM_T2_FgdlFgdl_BoundedTests(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    Conn(x,y) :- S(x,y,z).
    Conn(x,y) :- S(x,y,z), Conn(x,z), Conn(z,y).
    Goal() :- Conn(x,x).
  )",
                      "Goal", vocab, &diags);
  ViewSet views(vocab);
  views.AddAtomicView("VS", *vocab->FindPredicate("S"));
  size_t tests = 0;
  Verdict verdict = Verdict::kUnknownBounded;
  for (auto _ : state) {
    MonDetOptions options;
    options.query_depth = static_cast<int>(state.range(0));
    MonDetResult result = CheckMonotonicDeterminacy(*q, views, options);
    tests = result.tests_run;
    verdict = result.verdict;
  }
  state.counters["tests"] = static_cast<double>(tests);
  state.SetLabel(verdict == Verdict::kNotDetermined
                     ? "refuted"
                     : "no counterexample (paper: decidable, 2ExpTime)");
}
BENCHMARK(BM_T2_FgdlFgdl_BoundedTests)->Arg(2)->Arg(3);

// --- Cell: MDL / MDL+CQ — decidable, 3ExpTime (Thm 4). -------------------
void BM_T2_MdlMdlCq_BoundedTests(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                      "Goal", vocab, &diags);
  auto vdef = ParseQuery(
      "VP(x) :- U(x).\nVP(x) :- R(x,y), VP(y).", "VP", vocab, &diags);
  ViewSet views(vocab);
  views.AddView("VReach", *vdef);  // MDL view
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));  // CQ view
  size_t tests = 0;
  Verdict verdict = Verdict::kUnknownBounded;
  for (auto _ : state) {
    MonDetOptions options;
    options.query_depth = static_cast<int>(state.range(0));
    options.view_depth = static_cast<int>(state.range(0));
    MonDetResult result = CheckMonotonicDeterminacy(*q, views, options);
    tests = result.tests_run;
    verdict = result.verdict;
  }
  state.counters["tests"] = static_cast<double>(tests);
  state.SetLabel(verdict == Verdict::kNotDetermined
                     ? "refuted"
                     : "no counterexample (paper: decidable, 3ExpTime)");
}
BENCHMARK(BM_T2_MdlMdlCq_BoundedTests)->Arg(2)->Arg(3);

// --- Thread sweep over the MDL/MDL+CQ family at a depth where the test
// block is large (≥1000 canonical tests per check). range(0) = worker
// count, range(1) = canonical-form test cache on/off. The verdict and
// counters are identical across all six variants (mondet_parallel_test
// proves this bit-for-bit); only wall time and cache traffic move.
void BM_T2_MdlMdlCq_Threads(benchmark::State& state) {
  auto vocab = MakeVocabulary();
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                      "Goal", vocab, &diags);
  auto vdef = ParseQuery(
      "VP(x) :- U(x).\nVP(x) :- R(x,y), VP(y).", "VP", vocab, &diags);
  ViewSet views(vocab);
  views.AddView("VReach", *vdef);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  MonDetOptions options;
  options.query_depth = 6;
  options.view_depth = 6;
  options.max_query_expansions = 100;
  options.max_tests_per_expansion = 2000;
  options.num_threads = static_cast<int>(state.range(0));
  options.test_cache = state.range(1) == 1;
  MonDetResult result;
  for (auto _ : state) {
    result = CheckMonotonicDeterminacy(*q, views, options);
  }
  state.counters["tests"] = static_cast<double>(result.tests_run);
  state.counters["cache_hits"] = static_cast<double>(result.cache_hits);
  state.SetLabel(options.test_cache ? "cache on" : "cache off");
}
BENCHMARK(BM_T2_MdlMdlCq_Threads)
    ->ArgNames({"threads", "cache"})
    ->ArgsProduct({{1, 2, 4}, {0, 1}});

// --- Cell: MDL / UCQ — undecidable (Thm 6). -------------------------------
// The reduction's behaviour tracks the tiling problem exactly.
void BM_T2_MdlUcq_Undecidable(benchmark::State& state) {
  bool solvable = state.range(0) == 1;
  TilingProblem tp =
      solvable ? SolvableTilingProblem() : UnsolvableTilingProblem();
  Verdict verdict = Verdict::kUnknownBounded;
  for (auto _ : state) {
    Thm6Gadget gadget = BuildThm6(tp);
    MonDetOptions options;
    options.query_depth = 4;
    options.view_depth = 3;
    options.max_query_expansions = 40;
    options.max_tests_per_expansion = 3000;
    verdict =
        CheckMonotonicDeterminacy(gadget.query, gadget.views, options).verdict;
  }
  bool matches = solvable == (verdict == Verdict::kNotDetermined);
  state.SetLabel(std::string(solvable ? "solvable tiling" : "unsolvable tiling") +
                 (matches ? ": reduction verdict matches (paper: undecidable)"
                          : ": REDUCTION BROKEN"));
}
BENCHMARK(BM_T2_MdlUcq_Undecidable)->Arg(1)->Arg(0);

// --- Thread sweep over the solvable Thm 6 gadget: the refuter has to walk
// ~3500 canonical tests before the counterexample index, so this family
// exposes the parallel block scan. range(0) = worker count, range(1) =
// test cache on/off (the tiling D' instances are pairwise non-isomorphic,
// so cache-on measures pure canonical-hash overhead here).
void BM_T2_MdlUcq_Threads(benchmark::State& state) {
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);
  MonDetOptions options;
  options.query_depth = 4;
  options.view_depth = 3;
  options.max_query_expansions = 40;
  options.max_tests_per_expansion = 3000;
  options.num_threads = static_cast<int>(state.range(0));
  options.test_cache = state.range(1) == 1;
  MonDetResult result;
  for (auto _ : state) {
    result = CheckMonotonicDeterminacy(gadget.query, gadget.views, options);
  }
  state.counters["tests"] = static_cast<double>(result.tests_run);
  state.counters["cache_hits"] = static_cast<double>(result.cache_hits);
  state.SetLabel(std::string(result.verdict == Verdict::kNotDetermined
                                 ? "refuted"
                                 : "NO COUNTEREXAMPLE") +
                 (options.test_cache ? ", cache on" : ", cache off"));
}
BENCHMARK(BM_T2_MdlUcq_Threads)
    ->ArgNames({"threads", "cache"})
    ->ArgsProduct({{1, 2, 4}, {0, 1}});

// --- Cell: Datalog / fixed atomic view — undecidable (Prop. 9, Lemma 8). --
void BM_T2_DatalogAtomic_Lemma8(benchmark::State& state) {
  bool contained = state.range(0) == 1;
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  DatalogQuery q1 = contained
                        ? *ParseQuery("G1() :- R(x,y), R(y,z).", "G1", vocab,
                                      &diags)
                        : *ParseQuery("G1() :- R(x,y).", "G1", vocab, &diags);
  DatalogQuery q2 = contained
                        ? *ParseQuery("G2() :- R(x,y).", "G2", vocab, &diags)
                        : *ParseQuery("G2() :- R(x,x).", "G2", vocab, &diags);
  Verdict verdict = Verdict::kUnknownBounded;
  for (auto _ : state) {
    Prop9Reduction reduction = ContainmentToMonDet(q1, q2);
    verdict =
        CheckMonotonicDeterminacy(reduction.query, reduction.views).verdict;
  }
  bool matches = contained == (verdict != Verdict::kNotDetermined);
  state.SetLabel(std::string(contained ? "Q1⊑Q2" : "Q1⋢Q2") +
                 (matches ? ": reduction verdict matches (paper: undecidable)"
                          : ": REDUCTION BROKEN"));
}
BENCHMARK(BM_T2_DatalogAtomic_Lemma8)->Arg(1)->Arg(0);

// --- Conclusion / appendix: the Thm 8 query, with no Datalog rewriting,
// still has a PTime *stratified* separator (positive Boolean combination
// with a ProductTest stratum). Verified against the query on instance
// families.
void BM_T2_StratifiedSeparator(benchmark::State& state) {
  Thm6Gadget gadget = BuildThm6(UnsolvableTilingProblem());
  int n = static_cast<int>(state.range(0));
  bool agree = true;
  for (auto _ : state) {
    Instance axes = gadget.MakeAxes(n, n);
    agree = agree && DatalogHoldsOn(gadget.query, axes) ==
                         StratifiedRewritingHolds(
                             gadget, gadget.views.Image(axes));
    std::vector<int> tiles(static_cast<size_t>(n) * n, 0);
    Instance grid = gadget.MakeGridTest(n, n, tiles);
    agree = agree && DatalogHoldsOn(gadget.query, grid) ==
                         StratifiedRewritingHolds(
                             gadget, gadget.views.Image(grid));
  }
  state.SetLabel(agree
                     ? "stratified separator exact (appendix: PTime "
                       "separator despite no Datalog rewriting)"
                     : "SEPARATOR MISMATCH");
}
BENCHMARK(BM_T2_StratifiedSeparator)->Arg(2)->Arg(3);

// --- Separator row (Thm 9): the chase separator's cost grows with the
// machine's runtime — no fixed time bound can hold for all Datalog pairs.
void BM_T2_Thm9_SeparatorCost(benchmark::State& state) {
  static Thm9Gadget* gadget = new Thm9Gadget(BuildThm9(EraserMachine()));
  int n = static_cast<int>(state.range(0));
  std::vector<int> input(n, 1);
  Instance run = gadget->EncodeRun(input, 100000);
  size_t run_facts = run.num_facts();
  static CompiledProgram* compiled =
      new CompiledProgram(gadget->query.program);
  bool accepted = false;
  EvalStats stats;
  for (auto _ : state) {
    // The separator work: decide Q from the encoded run (the dominant
    // cost is re-checking the simulation, which grows ~quadratically).
    stats = EvalStats{};
    accepted =
        !compiled->Eval(run, &stats).NumRows(gadget->query.goal) == 0;
  }
  state.counters["run_facts"] = static_cast<double>(run_facts);
  state.counters["eval_iters"] = static_cast<double>(stats.iterations);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
  state.SetLabel(accepted
                     ? "separator re-simulates M (paper: no TIME(f) bound)"
                     : "UNEXPECTED REJECT");
}
BENCHMARK(BM_T2_Thm9_SeparatorCost)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace mondet
