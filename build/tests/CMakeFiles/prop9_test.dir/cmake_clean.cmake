file(REMOVE_RECURSE
  "CMakeFiles/prop9_test.dir/prop9_test.cc.o"
  "CMakeFiles/prop9_test.dir/prop9_test.cc.o.d"
  "prop9_test"
  "prop9_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop9_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
