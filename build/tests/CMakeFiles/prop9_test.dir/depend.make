# Empty dependencies file for prop9_test.
# This may be replaced when dependencies are built.
