file(REMOVE_RECURSE
  "CMakeFiles/forward_backward_test.dir/forward_backward_test.cc.o"
  "CMakeFiles/forward_backward_test.dir/forward_backward_test.cc.o.d"
  "forward_backward_test"
  "forward_backward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_backward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
