# Empty compiler generated dependencies file for forward_backward_test.
# This may be replaced when dependencies are built.
