file(REMOVE_RECURSE
  "CMakeFiles/thm9_test.dir/thm9_test.cc.o"
  "CMakeFiles/thm9_test.dir/thm9_test.cc.o.d"
  "thm9_test"
  "thm9_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm9_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
