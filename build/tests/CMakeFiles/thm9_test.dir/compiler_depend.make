# Empty compiler generated dependencies file for thm9_test.
# This may be replaced when dependencies are built.
