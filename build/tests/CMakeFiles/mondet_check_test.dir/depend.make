# Empty dependencies file for mondet_check_test.
# This may be replaced when dependencies are built.
