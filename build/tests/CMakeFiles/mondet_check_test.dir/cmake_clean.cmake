file(REMOVE_RECURSE
  "CMakeFiles/mondet_check_test.dir/mondet_check_test.cc.o"
  "CMakeFiles/mondet_check_test.dir/mondet_check_test.cc.o.d"
  "mondet_check_test"
  "mondet_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mondet_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
