# Empty compiler generated dependencies file for thm6_test.
# This may be replaced when dependencies are built.
