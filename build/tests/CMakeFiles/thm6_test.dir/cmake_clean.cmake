file(REMOVE_RECURSE
  "CMakeFiles/thm6_test.dir/thm6_test.cc.o"
  "CMakeFiles/thm6_test.dir/thm6_test.cc.o.d"
  "thm6_test"
  "thm6_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm6_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
