file(REMOVE_RECURSE
  "CMakeFiles/separator_test.dir/separator_test.cc.o"
  "CMakeFiles/separator_test.dir/separator_test.cc.o.d"
  "separator_test"
  "separator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
