# Empty compiler generated dependencies file for separator_test.
# This may be replaced when dependencies are built.
