file(REMOVE_RECURSE
  "CMakeFiles/thm7_test.dir/thm7_test.cc.o"
  "CMakeFiles/thm7_test.dir/thm7_test.cc.o.d"
  "thm7_test"
  "thm7_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm7_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
