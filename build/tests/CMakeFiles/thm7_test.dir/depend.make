# Empty dependencies file for thm7_test.
# This may be replaced when dependencies are built.
