file(REMOVE_RECURSE
  "CMakeFiles/cq_automaton_test.dir/cq_automaton_test.cc.o"
  "CMakeFiles/cq_automaton_test.dir/cq_automaton_test.cc.o.d"
  "cq_automaton_test"
  "cq_automaton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
