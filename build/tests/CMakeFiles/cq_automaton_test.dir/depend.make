# Empty dependencies file for cq_automaton_test.
# This may be replaced when dependencies are built.
