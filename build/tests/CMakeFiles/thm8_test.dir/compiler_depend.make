# Empty compiler generated dependencies file for thm8_test.
# This may be replaced when dependencies are built.
