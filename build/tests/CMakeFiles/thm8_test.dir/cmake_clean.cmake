file(REMOVE_RECURSE
  "CMakeFiles/thm8_test.dir/thm8_test.cc.o"
  "CMakeFiles/thm8_test.dir/thm8_test.cc.o.d"
  "thm8_test"
  "thm8_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
