file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_longrows.dir/bench_fig4_longrows.cc.o"
  "CMakeFiles/bench_fig4_longrows.dir/bench_fig4_longrows.cc.o.d"
  "bench_fig4_longrows"
  "bench_fig4_longrows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_longrows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
