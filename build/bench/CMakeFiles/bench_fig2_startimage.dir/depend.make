# Empty dependencies file for bench_fig2_startimage.
# This may be replaced when dependencies are built.
