file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_startimage.dir/bench_fig2_startimage.cc.o"
  "CMakeFiles/bench_fig2_startimage.dir/bench_fig2_startimage.cc.o.d"
  "bench_fig2_startimage"
  "bench_fig2_startimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_startimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
