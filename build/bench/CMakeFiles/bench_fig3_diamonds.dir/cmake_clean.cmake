file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_diamonds.dir/bench_fig3_diamonds.cc.o"
  "CMakeFiles/bench_fig3_diamonds.dir/bench_fig3_diamonds.cc.o.d"
  "bench_fig3_diamonds"
  "bench_fig3_diamonds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_diamonds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
