# Empty dependencies file for bench_fig3_diamonds.
# This may be replaced when dependencies are built.
