file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_gridtests.dir/bench_fig1_gridtests.cc.o"
  "CMakeFiles/bench_fig1_gridtests.dir/bench_fig1_gridtests.cc.o.d"
  "bench_fig1_gridtests"
  "bench_fig1_gridtests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_gridtests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
