# Empty dependencies file for bench_fig1_gridtests.
# This may be replaced when dependencies are built.
