
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/nta.cc" "src/CMakeFiles/mondet.dir/automata/nta.cc.o" "gcc" "src/CMakeFiles/mondet.dir/automata/nta.cc.o.d"
  "/root/repo/src/automata/ops.cc" "src/CMakeFiles/mondet.dir/automata/ops.cc.o" "gcc" "src/CMakeFiles/mondet.dir/automata/ops.cc.o.d"
  "/root/repo/src/base/gaifman.cc" "src/CMakeFiles/mondet.dir/base/gaifman.cc.o" "gcc" "src/CMakeFiles/mondet.dir/base/gaifman.cc.o.d"
  "/root/repo/src/base/homomorphism.cc" "src/CMakeFiles/mondet.dir/base/homomorphism.cc.o" "gcc" "src/CMakeFiles/mondet.dir/base/homomorphism.cc.o.d"
  "/root/repo/src/base/instance.cc" "src/CMakeFiles/mondet.dir/base/instance.cc.o" "gcc" "src/CMakeFiles/mondet.dir/base/instance.cc.o.d"
  "/root/repo/src/base/symbol_table.cc" "src/CMakeFiles/mondet.dir/base/symbol_table.cc.o" "gcc" "src/CMakeFiles/mondet.dir/base/symbol_table.cc.o.d"
  "/root/repo/src/core/backward.cc" "src/CMakeFiles/mondet.dir/core/backward.cc.o" "gcc" "src/CMakeFiles/mondet.dir/core/backward.cc.o.d"
  "/root/repo/src/core/cq_automaton.cc" "src/CMakeFiles/mondet.dir/core/cq_automaton.cc.o" "gcc" "src/CMakeFiles/mondet.dir/core/cq_automaton.cc.o.d"
  "/root/repo/src/core/forward.cc" "src/CMakeFiles/mondet.dir/core/forward.cc.o" "gcc" "src/CMakeFiles/mondet.dir/core/forward.cc.o.d"
  "/root/repo/src/core/mondet_check.cc" "src/CMakeFiles/mondet.dir/core/mondet_check.cc.o" "gcc" "src/CMakeFiles/mondet.dir/core/mondet_check.cc.o.d"
  "/root/repo/src/core/rewriting.cc" "src/CMakeFiles/mondet.dir/core/rewriting.cc.o" "gcc" "src/CMakeFiles/mondet.dir/core/rewriting.cc.o.d"
  "/root/repo/src/core/separator.cc" "src/CMakeFiles/mondet.dir/core/separator.cc.o" "gcc" "src/CMakeFiles/mondet.dir/core/separator.cc.o.d"
  "/root/repo/src/cq/containment.cc" "src/CMakeFiles/mondet.dir/cq/containment.cc.o" "gcc" "src/CMakeFiles/mondet.dir/cq/containment.cc.o.d"
  "/root/repo/src/cq/cq.cc" "src/CMakeFiles/mondet.dir/cq/cq.cc.o" "gcc" "src/CMakeFiles/mondet.dir/cq/cq.cc.o.d"
  "/root/repo/src/cq/ucq.cc" "src/CMakeFiles/mondet.dir/cq/ucq.cc.o" "gcc" "src/CMakeFiles/mondet.dir/cq/ucq.cc.o.d"
  "/root/repo/src/datalog/approximation.cc" "src/CMakeFiles/mondet.dir/datalog/approximation.cc.o" "gcc" "src/CMakeFiles/mondet.dir/datalog/approximation.cc.o.d"
  "/root/repo/src/datalog/eval.cc" "src/CMakeFiles/mondet.dir/datalog/eval.cc.o" "gcc" "src/CMakeFiles/mondet.dir/datalog/eval.cc.o.d"
  "/root/repo/src/datalog/fragment.cc" "src/CMakeFiles/mondet.dir/datalog/fragment.cc.o" "gcc" "src/CMakeFiles/mondet.dir/datalog/fragment.cc.o.d"
  "/root/repo/src/datalog/normalize.cc" "src/CMakeFiles/mondet.dir/datalog/normalize.cc.o" "gcc" "src/CMakeFiles/mondet.dir/datalog/normalize.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/CMakeFiles/mondet.dir/datalog/parser.cc.o" "gcc" "src/CMakeFiles/mondet.dir/datalog/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/CMakeFiles/mondet.dir/datalog/program.cc.o" "gcc" "src/CMakeFiles/mondet.dir/datalog/program.cc.o.d"
  "/root/repo/src/games/pebble.cc" "src/CMakeFiles/mondet.dir/games/pebble.cc.o" "gcc" "src/CMakeFiles/mondet.dir/games/pebble.cc.o.d"
  "/root/repo/src/games/unravel.cc" "src/CMakeFiles/mondet.dir/games/unravel.cc.o" "gcc" "src/CMakeFiles/mondet.dir/games/unravel.cc.o.d"
  "/root/repo/src/reductions/lemma6.cc" "src/CMakeFiles/mondet.dir/reductions/lemma6.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/lemma6.cc.o.d"
  "/root/repo/src/reductions/prop9.cc" "src/CMakeFiles/mondet.dir/reductions/prop9.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/prop9.cc.o.d"
  "/root/repo/src/reductions/thm6.cc" "src/CMakeFiles/mondet.dir/reductions/thm6.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/thm6.cc.o.d"
  "/root/repo/src/reductions/thm6_stratified.cc" "src/CMakeFiles/mondet.dir/reductions/thm6_stratified.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/thm6_stratified.cc.o.d"
  "/root/repo/src/reductions/thm7.cc" "src/CMakeFiles/mondet.dir/reductions/thm7.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/thm7.cc.o.d"
  "/root/repo/src/reductions/thm8.cc" "src/CMakeFiles/mondet.dir/reductions/thm8.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/thm8.cc.o.d"
  "/root/repo/src/reductions/thm9.cc" "src/CMakeFiles/mondet.dir/reductions/thm9.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/thm9.cc.o.d"
  "/root/repo/src/reductions/tiling.cc" "src/CMakeFiles/mondet.dir/reductions/tiling.cc.o" "gcc" "src/CMakeFiles/mondet.dir/reductions/tiling.cc.o.d"
  "/root/repo/src/tree/code.cc" "src/CMakeFiles/mondet.dir/tree/code.cc.o" "gcc" "src/CMakeFiles/mondet.dir/tree/code.cc.o.d"
  "/root/repo/src/tree/decompose.cc" "src/CMakeFiles/mondet.dir/tree/decompose.cc.o" "gcc" "src/CMakeFiles/mondet.dir/tree/decompose.cc.o.d"
  "/root/repo/src/tree/decomposition.cc" "src/CMakeFiles/mondet.dir/tree/decomposition.cc.o" "gcc" "src/CMakeFiles/mondet.dir/tree/decomposition.cc.o.d"
  "/root/repo/src/views/inverse_rules.cc" "src/CMakeFiles/mondet.dir/views/inverse_rules.cc.o" "gcc" "src/CMakeFiles/mondet.dir/views/inverse_rules.cc.o.d"
  "/root/repo/src/views/view_set.cc" "src/CMakeFiles/mondet.dir/views/view_set.cc.o" "gcc" "src/CMakeFiles/mondet.dir/views/view_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
