file(REMOVE_RECURSE
  "libmondet.a"
)
