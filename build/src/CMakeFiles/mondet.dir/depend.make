# Empty dependencies file for mondet.
# This may be replaced when dependencies are built.
