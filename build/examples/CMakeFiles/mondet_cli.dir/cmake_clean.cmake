file(REMOVE_RECURSE
  "CMakeFiles/mondet_cli.dir/mondet_cli.cpp.o"
  "CMakeFiles/mondet_cli.dir/mondet_cli.cpp.o.d"
  "mondet_cli"
  "mondet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mondet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
