# Empty compiler generated dependencies file for mondet_cli.
# This may be replaced when dependencies are built.
