file(REMOVE_RECURSE
  "CMakeFiles/tiling_reduction.dir/tiling_reduction.cpp.o"
  "CMakeFiles/tiling_reduction.dir/tiling_reduction.cpp.o.d"
  "tiling_reduction"
  "tiling_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
