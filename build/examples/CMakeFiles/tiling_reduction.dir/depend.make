# Empty dependencies file for tiling_reduction.
# This may be replaced when dependencies are built.
