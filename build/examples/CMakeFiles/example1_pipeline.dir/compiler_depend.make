# Empty compiler generated dependencies file for example1_pipeline.
# This may be replaced when dependencies are built.
