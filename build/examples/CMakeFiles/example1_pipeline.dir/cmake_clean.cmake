file(REMOVE_RECURSE
  "CMakeFiles/example1_pipeline.dir/example1_pipeline.cpp.o"
  "CMakeFiles/example1_pipeline.dir/example1_pipeline.cpp.o.d"
  "example1_pipeline"
  "example1_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
