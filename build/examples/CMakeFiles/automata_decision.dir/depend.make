# Empty dependencies file for automata_decision.
# This may be replaced when dependencies are built.
