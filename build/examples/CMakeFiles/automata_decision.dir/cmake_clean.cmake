file(REMOVE_RECURSE
  "CMakeFiles/automata_decision.dir/automata_decision.cpp.o"
  "CMakeFiles/automata_decision.dir/automata_decision.cpp.o.d"
  "automata_decision"
  "automata_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
