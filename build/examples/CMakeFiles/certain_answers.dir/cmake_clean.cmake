file(REMOVE_RECURSE
  "CMakeFiles/certain_answers.dir/certain_answers.cpp.o"
  "CMakeFiles/certain_answers.dir/certain_answers.cpp.o.d"
  "certain_answers"
  "certain_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certain_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
