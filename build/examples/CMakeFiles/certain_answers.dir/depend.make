# Empty dependencies file for certain_answers.
# This may be replaced when dependencies are built.
