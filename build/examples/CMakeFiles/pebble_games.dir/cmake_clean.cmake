file(REMOVE_RECURSE
  "CMakeFiles/pebble_games.dir/pebble_games.cpp.o"
  "CMakeFiles/pebble_games.dir/pebble_games.cpp.o.d"
  "pebble_games"
  "pebble_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebble_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
